(* The concurrent multi-session server: wire protocol round trips,
   admission control and queue shedding, round-robin fairness, the
   server-vs-Interleave and serial-vs-parallel differentials, shared
   plan/result cache accounting across sessions, and capped-pool
   conflict requeues. *)

module F = Msql.Fixtures
module M = Msql.Msession
module S = Msql.Server
module W = Msql.Wire
module I = Msql.Interleave

let contains = Astring_contains.contains

let config ?(max_sessions = 64) ?(max_queue = 16) ?(max_requeues = 8)
    ?pool_cap ?(domains = 1) () =
  { S.max_sessions; max_queue; max_requeues; pool_cap; domains }

let ok_result = function
  | Ok r -> r
  | Error m -> Alcotest.fail ("unexpected statement error: " ^ m)

let connect_exn srv =
  match S.connect srv with
  | Ok sid -> sid
  | Error e -> Alcotest.fail (S.error_message e)

let submit_exn srv sid sql =
  match S.submit srv sid sql with
  | Ok seq -> seq
  | Error e -> Alcotest.fail (S.error_message e)

(* ---- wire protocol ---------------------------------------------------- *)

let test_wire_roundtrip () =
  let srv = S.of_fixtures ~config:(config ()) (F.make ()) in
  let c = W.create srv in
  (match W.on_line c "STMT USE avis SELECT code FROM cars" with
  | [ reply ] ->
      Alcotest.(check bool) "STMT before HELLO refused" true
        (contains reply "ERROR protocol")
  | _ -> Alcotest.fail "expected one protocol error line");
  (match W.on_line c "HELLO" with
  | [ "HELLO 1" ] -> ()
  | other -> Alcotest.fail (String.concat "|" other));
  Alcotest.(check (option int)) "sid bound" (Some 1) (W.sid c);
  Alcotest.(check (list string))
    "accepted STMT replies asynchronously" []
    (W.on_line c "STMT USE avis SELECT code FROM cars WHERE cartype = 'sedan'");
  (match S.drain srv with
  | [ comp ] ->
      let line = W.completion_line comp in
      Alcotest.(check bool) "RESULT line" true
        (String.length line > 9 && String.sub line 0 9 = "RESULT 1 ");
      Alcotest.(check bool) "single line" true
        (not (String.contains line '\n'));
      let payload =
        W.unescape (String.sub line 9 (String.length line - 9))
      in
      Alcotest.(check bool) "table came back" true (contains payload "code")
  | comps ->
      Alcotest.fail (Printf.sprintf "expected 1 completion, got %d"
                       (List.length comps)));
  (match W.on_line c "NOPE" with
  | [ reply ] ->
      Alcotest.(check bool) "unknown command" true
        (contains reply "ERROR protocol")
  | _ -> Alcotest.fail "expected one error line");
  (match W.on_line c "BYE" with
  | [ "BYE" ] -> ()
  | other -> Alcotest.fail (String.concat "|" other));
  Alcotest.(check (option int)) "sid released" None (W.sid c);
  Alcotest.(check int) "session retired" 0 (S.live_sessions srv)

let test_wire_escaping () =
  let samples = [ "a\nb"; "back\\slash"; "\\n"; ""; "plain" ] in
  List.iter
    (fun s ->
      Alcotest.(check string) ("roundtrip " ^ String.escaped s) s
        (W.unescape (W.escape s));
      Alcotest.(check bool) "escaped is one line" true
        (not (String.contains (W.escape s) '\n')))
    samples

(* ---- admission control and shedding ----------------------------------- *)

let test_admission_and_shedding () =
  let srv =
    S.of_fixtures ~config:(config ~max_sessions:2 ~max_queue:2 ()) (F.make ())
  in
  let s1 = connect_exn srv in
  let _s2 = connect_exn srv in
  (match S.connect srv with
  | Error (S.Overloaded m) ->
      Alcotest.(check bool) "says why" true (contains m "session table full")
  | Ok _ | Error _ -> Alcotest.fail "third connect must be shed");
  let q = "USE avis SELECT code FROM cars" in
  ignore (submit_exn srv s1 q);
  ignore (submit_exn srv s1 q);
  (match S.submit srv s1 q with
  | Error (S.Overloaded m) ->
      Alcotest.(check bool) "says why" true (contains m "queue full")
  | Ok _ | Error _ -> Alcotest.fail "third submit must be shed");
  (match S.submit srv 99 q with
  | Error (S.Unknown_session 99) -> ()
  | Ok _ | Error _ -> Alcotest.fail "unknown sid must be typed");
  let st = S.stats srv in
  Alcotest.(check int) "rejected counted" 1 st.S.rejected;
  Alcotest.(check int) "shed counted" 1 st.S.shed;
  (* the queue drains and capacity comes back *)
  let comps = S.drain srv in
  Alcotest.(check int) "both queued statements ran" 2 (List.length comps);
  match S.submit srv s1 q with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (S.error_message e)

(* ---- fairness --------------------------------------------------------- *)

let test_round_robin_fairness () =
  let srv = S.of_fixtures ~config:(config ()) (F.make ()) in
  let sids = List.init 3 (fun _ -> connect_exn srv) in
  (* every session enqueues two statements up front *)
  List.iter
    (fun sid ->
      ignore (submit_exn srv sid "USE avis SELECT code FROM cars");
      ignore (submit_exn srv sid "USE national SELECT vcode FROM vehicle"))
    sids;
  let round1 = S.step_round srv in
  Alcotest.(check (list int)) "one statement per session, connect order"
    sids
    (List.map (fun c -> c.S.c_sid) round1);
  Alcotest.(check (list int)) "all first statements" [ 1; 1; 1 ]
    (List.map (fun c -> c.S.c_seq) round1);
  let round2 = S.step_round srv in
  Alcotest.(check (list int)) "second statements next round" [ 2; 2; 2 ]
    (List.map (fun c -> c.S.c_seq) round2);
  List.iter (fun c -> ignore (ok_result c.S.c_result)) (round1 @ round2);
  Alcotest.(check int) "queues empty" 0 (S.queued srv)

(* ---- differentials ---------------------------------------------------- *)

(* each client k owns airline<k>; the workload is disjoint by design,
   which is what the scheduler needs to run it concurrently *)
let client_sql k =
  [
    Printf.sprintf
      "USE airline%d UPDATE flights SET rate = rate * 2 WHERE source = \
       'Houston'"
      k;
    Printf.sprintf
      "USE airline%d SELECT flnu, rate FROM flights WHERE destination = \
       'Denver'"
      k;
  ]

let fleet_scans fx n =
  List.init n (fun i ->
      Sqlcore.Relation.to_string
        (F.scan fx ~db:(Printf.sprintf "airline%d" (i + 1)) ~table:"flights"))

(* the server's serial wave schedule must be exactly Interleave's
   round-robin: same results, same final state *)
let test_server_matches_interleave () =
  let n = 3 in
  let via_server () =
    let fx = F.airline_fleet ~flights_per_db:20 ~n () in
    let srv = S.of_fixtures ~config:(config ~domains:1 ()) fx in
    let sids = List.init n (fun _ -> connect_exn srv) in
    List.iteri
      (fun i sid -> List.iter (fun q -> ignore (submit_exn srv sid q))
          (client_sql (i + 1)))
      sids;
    let comps = S.drain srv in
    let results =
      List.map
        (fun c -> M.result_to_string (ok_result c.S.c_result))
        (List.sort
           (fun a b ->
             compare (a.S.c_sid, a.S.c_seq) (b.S.c_sid, b.S.c_seq))
           comps)
    in
    (results, fleet_scans fx n)
  in
  let via_interleave () =
    let fx = F.airline_fleet ~flights_per_db:20 ~n () in
    let base = fx.F.session in
    (* configure the baseline sessions exactly like server members:
       shared dictionaries, one shared pool, one communal cache block *)
    let pool = Narada.Pool.create fx.F.world in
    let sc = M.shared_caches () in
    let sessions =
      List.init n (fun _ ->
          let s =
            M.create ~world:fx.F.world ~directory:fx.F.directory
              ~ad:(M.ad base) ~gdd:(M.gdd base) ()
          in
          M.set_shared_caches s sc;
          M.set_shared_pool s pool;
          M.set_domains s 1;
          s)
    in
    (* one wave per statement rank, like the server's rounds *)
    let results = ref [] in
    for rank = 0 to 1 do
      let participants =
        List.mapi
          (fun i session ->
            { I.label = Printf.sprintf "s%d" (i + 1);
              session;
              sql = List.nth (client_sql (i + 1)) rank })
          sessions
      in
      let outcome = I.run ~schedule:I.Round_robin participants in
      results :=
        !results
        @ List.map
            (fun (label, r) -> (label, rank, M.result_to_string (ok_result r)))
            outcome
    done;
    let sorted =
      List.sort compare !results |> List.map (fun (_, _, r) -> r)
    in
    (sorted, fleet_scans fx n)
  in
  let server_results, server_state = via_server () in
  let inter_results, inter_state = via_interleave () in
  Alcotest.(check (list string)) "same results" inter_results server_results;
  Alcotest.(check (list string)) "same final state" inter_state server_state

(* independent sessions executed concurrently (domains > 1, Taskpool
   waves under clock frames) must leave the same state as the serial
   schedule *)
let test_parallel_matches_serial () =
  let n = 4 in
  let run ~domains =
    let fx = F.airline_fleet ~flights_per_db:20 ~n () in
    let srv = S.of_fixtures ~config:(config ~domains ()) fx in
    let sids = List.init n (fun _ -> connect_exn srv) in
    List.iteri
      (fun i sid -> List.iter (fun q -> ignore (submit_exn srv sid q))
          (client_sql (i + 1)))
      sids;
    let comps = S.drain srv in
    List.iter (fun c -> ignore (ok_result c.S.c_result)) comps;
    (fleet_scans fx n, S.stats srv)
  in
  let serial_state, _ = run ~domains:1 in
  let par_state, par_stats = run ~domains:4 in
  Alcotest.(check (list string)) "state identical" serial_state par_state;
  Alcotest.(check bool) "waves actually ran on the pool" true
    (par_stats.S.parallel_batches > 0)

(* ---- cross-session cache sharing -------------------------------------- *)

let test_shared_cache_accounting () =
  let srv = S.of_fixtures ~config:(config ()) (F.make ()) in
  let s1 = connect_exn srv in
  let s2 = connect_exn srv in
  (* a cross-database join ships subqueries between sites, which is what
     the shipped-result cache memoizes *)
  let q =
    "USE avis national SELECT c.code, v.vcode FROM avis.cars c, \
     national.vehicle v WHERE c.cartype = v.vty"
  in
  ignore (submit_exn srv s1 q);
  List.iter (fun c -> ignore (ok_result c.S.c_result)) (S.drain srv);
  ignore (submit_exn srv s2 q);
  List.iter (fun c -> ignore (ok_result c.S.c_result)) (S.drain srv);
  let cs1 = M.cache_stats (Option.get (S.session srv s1)) in
  let cs2 = M.cache_stats (Option.get (S.session srv s2)) in
  Alcotest.(check int) "first sharer planned" 1 cs1.M.plan_misses;
  Alcotest.(check int) "second sharer reused the plan" 1 cs2.M.plan_hits;
  Alcotest.(check int) "second sharer planned nothing" 0 cs2.M.plan_misses;
  Alcotest.(check bool) "first sharer shipped" true (cs1.M.result_misses > 0);
  Alcotest.(check bool) "second sharer moved zero bytes" true
    (cs2.M.result_hits > 0 && cs2.M.result_misses = 0);
  let agg = S.cache_stats srv in
  Alcotest.(check int) "aggregate folds both sessions"
    (cs1.M.plan_hits + cs2.M.plan_hits) agg.M.plan_hits;
  (* pool counters come from the one shared pool, folded exactly once *)
  let ps = Narada.Pool.stats (S.pool srv) in
  Alcotest.(check int) "pool counted once" ps.Narada.Pool.hits
    agg.M.pool_hits

let test_shared_cache_epoch_invalidation () =
  let srv = S.of_fixtures ~config:(config ()) (F.make ()) in
  let s1 = connect_exn srv in
  let s2 = connect_exn srv in
  let q = "USE avis SELECT code FROM cars" in
  ignore (submit_exn srv s1 q);
  List.iter (fun c -> ignore (ok_result c.S.c_result)) (S.drain srv);
  (* a dictionary change through any sharer bumps the shared epoch *)
  (match
     M.exec (Option.get (S.session srv s1)) "IMPORT DATABASE avis FROM SERVICE avis"
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  ignore (submit_exn srv s2 q);
  List.iter (fun c -> ignore (ok_result c.S.c_result)) (S.drain srv);
  let cs2 = M.cache_stats (Option.get (S.session srv s2)) in
  Alcotest.(check int) "stale shared plan not served" 0 cs2.M.plan_hits;
  Alcotest.(check int) "replanned under the new epoch" 1 cs2.M.plan_misses

(* ---- capped pool: conflict, requeue, completion ----------------------- *)

let test_pool_conflict_requeue () =
  let srv =
    S.of_fixtures ~config:(config ~pool_cap:1 ~domains:1 ()) (F.make ())
  in
  let s1 = connect_exn srv in
  let s2 = connect_exn srv in
  (* same service: under the serial interleaving both OPEN continental in
     the same wave, and the cap of one forces the second to lose *)
  let q = "USE continental SELECT flnu FROM flights" in
  ignore (submit_exn srv s1 q);
  ignore (submit_exn srv s2 q);
  let comps = S.drain srv in
  Alcotest.(check int) "both statements completed" 2 (List.length comps);
  List.iter (fun c -> ignore (ok_result c.S.c_result)) comps;
  let st = S.stats srv in
  Alcotest.(check bool) "the loser was requeued" true (st.S.requeues > 0);
  let loser = List.find (fun c -> c.S.c_sid = s2) comps in
  Alcotest.(check bool) "its completion says so" true
    (loser.S.c_requeues > 0);
  let ps = Narada.Pool.stats (S.pool srv) in
  Alcotest.(check bool) "conflict counted" true (ps.Narada.Pool.conflicts > 0);
  Alcotest.(check int) "aggregate sees it" ps.Narada.Pool.conflicts
    (S.cache_stats srv).M.pool_conflicts;
  (* every checkout was balanced by a checkin: nothing left in use *)
  Alcotest.(check int) "ledger empty" 0
    (Narada.Pool.checked_out (S.pool srv) "continental");
  ignore s1

let () =
  Alcotest.run "server"
    [
      ( "wire",
        [
          Alcotest.test_case "protocol round trip" `Quick test_wire_roundtrip;
          Alcotest.test_case "payload escaping" `Quick test_wire_escaping;
        ] );
      ( "admission",
        [
          Alcotest.test_case "session cap and queue shedding" `Quick
            test_admission_and_shedding;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "round-robin fairness" `Quick
            test_round_robin_fairness;
          Alcotest.test_case "server matches Interleave" `Quick
            test_server_matches_interleave;
          Alcotest.test_case "parallel waves match serial state" `Quick
            test_parallel_matches_serial;
        ] );
      ( "sharing",
        [
          Alcotest.test_case "shared plan/result caches account per session"
            `Quick test_shared_cache_accounting;
          Alcotest.test_case "shared epoch invalidation" `Quick
            test_shared_cache_epoch_invalidation;
          Alcotest.test_case "capped pool conflict requeues" `Quick
            test_pool_conflict_requeue;
        ] );
    ]
