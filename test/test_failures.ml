(* Fault tolerance: deterministic chaos in netsim, transient-vs-fatal
   injection, retry/backoff under the virtual clock, and the engine's
   in-doubt 2PC recovery (verdict replay, presumed abort, vital-split
   compensation). *)

open Sqlcore
module World = Netsim.World
module Inject = Ldbms.Failure_injector
module D = Narada.Dol_ast
module Engine = Narada.Engine
module Lam = Narada.Lam
module Policy = Narada.Retry_policy
module Caps = Ldbms.Capabilities

let status =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (D.status_to_string s))
    (fun a b -> a = b)

let value = Alcotest.testable Value.pp Value.equal
let contains = Astring_contains.contains

(* ---- netsim faults -------------------------------------------------------- *)

let two_sites () =
  let w = World.create () in
  World.add_site w (Netsim.Site.make "alpha");
  World.add_site w (Netsim.Site.make "beta");
  w

let test_down_until_recovers () =
  let w = two_sites () in
  World.set_down_until w "alpha" 50.0;
  Alcotest.(check bool) "down now" true (World.is_down w "alpha");
  (match World.next_recovery_ms w "alpha" with
  | Some t -> Alcotest.(check (float 0.001)) "recovery instant" 50.0 t
  | None -> Alcotest.fail "expected a scheduled recovery");
  World.advance_ms w 50.0;
  Alcotest.(check bool) "recovered at the instant" false
    (World.is_down w "alpha");
  (* the site answers again without any explicit clearing *)
  World.send w ~src:"beta" ~dst:"alpha" ~bytes:10

let test_scheduled_outage_window () =
  let w = two_sites () in
  World.schedule_outage w "alpha" ~from_ms:10.0 ~until_ms:20.0;
  Alcotest.(check bool) "up before" false (World.is_down w "alpha");
  World.advance_ms w 10.0;
  Alcotest.(check bool) "down inside" true (World.is_down w "alpha");
  World.advance_ms w 10.0;
  Alcotest.(check bool) "up after" false (World.is_down w "alpha")

let test_lose_next_is_one_shot () =
  let w = two_sites () in
  World.lose_next w ~src:"alpha" ~dst:"beta";
  (match World.send w ~src:"alpha" ~dst:"beta" ~bytes:10 with
  | () -> Alcotest.fail "expected Lost_message"
  | exception World.Lost_message ("alpha", "beta") -> ()
  | exception _ -> Alcotest.fail "wrong exception");
  (* the queue is consumed: the resend goes through *)
  World.send w ~src:"alpha" ~dst:"beta" ~bytes:10;
  Alcotest.(check int) "one loss counted" 1 (World.stats w).World.lost;
  (* the reverse direction was never affected *)
  World.send w ~src:"beta" ~dst:"alpha" ~bytes:10

let lost_pattern w n =
  List.init n (fun _ ->
      match World.send w ~src:"alpha" ~dst:"beta" ~bytes:8 with
      | () -> false
      | exception World.Lost_message _ -> true)

let test_seeded_loss_is_deterministic () =
  let w1 = two_sites () and w2 = two_sites () in
  World.set_loss w1 ~seed:7 ~prob:0.5;
  World.set_loss w2 ~seed:7 ~prob:0.5;
  let p1 = lost_pattern w1 60 and p2 = lost_pattern w2 60 in
  Alcotest.(check (list bool)) "same seed, same losses" p1 p2;
  Alcotest.(check bool) "some lost" true (List.mem true p1);
  Alcotest.(check bool) "some delivered" true (List.mem false p1);
  (* a different seed gives a different pattern *)
  let w3 = two_sites () in
  World.set_loss w3 ~seed:8 ~prob:0.5;
  Alcotest.(check bool) "different seed differs" false (lost_pattern w3 60 = p1)

(* ---- failure injector ----------------------------------------------------- *)

let kind_sequence inj n =
  List.init n (fun _ ->
      match Inject.fires_kind inj Inject.At_execute with
      | None -> "-"
      | Some Inject.Transient -> "t"
      | Some Inject.Fatal -> "f")

let test_set_random_deterministic () =
  let i1 = Inject.create () and i2 = Inject.create () in
  Inject.set_random ~kind:Inject.Transient i1 ~seed:11 ~prob:0.3;
  Inject.set_random ~kind:Inject.Transient i2 ~seed:11 ~prob:0.3;
  let s1 = kind_sequence i1 50 and s2 = kind_sequence i2 50 in
  Alcotest.(check (list string)) "same seed, same firings" s1 s2;
  Alcotest.(check bool) "fires transient" true (List.mem "t" s1);
  Alcotest.(check bool) "never fatal" false (List.mem "f" s1)

let test_transient_classification () =
  Alcotest.(check bool) "marker recognized" true
    (Inject.is_transient_message (Inject.transient_marker ^ " deadlock"));
  Alcotest.(check bool) "plain abort is not" false
    (Inject.is_transient_message "syntax error");
  (match Lam.classify_local_aware (Lam.Local (Inject.transient_marker ^ " x")) with
  | Policy.Retryable _ -> ()
  | Policy.Terminal _ -> Alcotest.fail "transient local must be retryable");
  (match Lam.classify_local_aware (Lam.Local "constraint violated") with
  | Policy.Terminal _ -> ()
  | Policy.Retryable _ -> Alcotest.fail "fatal local must be terminal");
  match Lam.classify_io (Lam.Lost "msg") with
  | Policy.Retryable _ -> ()
  | Policy.Terminal _ -> Alcotest.fail "lost message must be retryable"

(* ---- retry policy --------------------------------------------------------- *)

let test_backoff_deterministic_and_bounded () =
  let p = Policy.default in
  List.iter
    (fun attempt ->
      let d1 = Policy.backoff_ms p ~key:"exec:site1" ~attempt in
      let d2 = Policy.backoff_ms p ~key:"exec:site1" ~attempt in
      Alcotest.(check (float 0.0)) "deterministic" d1 d2;
      Alcotest.(check bool) "positive" true (d1 > 0.0);
      Alcotest.(check bool) "within jittered cap" true
        (d1 <= p.Policy.max_backoff_ms *. (1.0 +. p.Policy.jitter)))
    [ 1; 2; 3; 4; 5 ];
  (* distinct keys get distinct jitter *)
  Alcotest.(check bool) "keys decorrelate" false
    (Policy.backoff_ms p ~key:"a" ~attempt:1
    = Policy.backoff_ms p ~key:"b" ~attempt:1)

let flight_schema =
  [ Schema.column "flnu" Ty.Int; Schema.column "source" Ty.Str;
    Schema.column "rate" Ty.Float ]

let mk_service w name site caps =
  World.add_site w (Netsim.Site.make site);
  let db = Ldbms.Database.create name in
  Ldbms.Database.load db ~name:"flights" flight_schema
    [ [| Value.Int 1; Value.Str "Houston"; Value.Float 100.0 |] ];
  Narada.Service.make ~site ~caps db

let test_retry_until_exhausted () =
  let w = World.create () in
  let svc = mk_service w "aero" "site1" Caps.ingres_like in
  World.set_down w "site1" true;
  let attempts = ref 0 in
  let t0 = World.now_ms w in
  (match
     Lam.connect
       ~on_retry:(fun ~op:_ ~attempt:_ ~delay_ms:_ ~reason:_ -> incr attempts)
       w svc
   with
  | Ok _ -> Alcotest.fail "connect to a dead site must fail"
  | Error (Lam.Network _) -> ()
  | Error _ -> Alcotest.fail "expected a network failure");
  Alcotest.(check int) "all retries spent"
    (Policy.default.Policy.max_attempts - 1)
    !attempts;
  let spent = World.now_ms w -. t0 in
  Alcotest.(check bool) "backoff charged to the clock" true (spent > 0.0);
  Alcotest.(check bool) "within budget" true
    (spent <= Policy.default.Policy.budget_ms)

let test_transient_connect_refusal_retried () =
  let w = World.create () in
  let svc = mk_service w "aero" "site1" Caps.ingres_like in
  Inject.fail_next ~kind:Inject.Transient svc.Narada.Service.injector
    Inject.At_connect;
  let attempts = ref 0 in
  match
    Lam.connect
      ~on_retry:(fun ~op:_ ~attempt:_ ~delay_ms:_ ~reason:_ -> incr attempts)
      w svc
  with
  | Ok _ -> Alcotest.(check int) "one retry" 1 !attempts
  | Error f -> Alcotest.fail ("expected recovery, got " ^ Lam.failure_message f)

(* ---- engine: retry, in-doubt recovery, splits ----------------------------- *)

let setup () =
  let world = World.create () in
  let dir = Narada.Directory.create () in
  let mk name site =
    let svc = mk_service world name site Caps.ingres_like in
    Narada.Directory.register dir svc;
    svc.Narada.Service.database
  in
  let a = mk "aero" "site1" in
  let b = mk "bravo" "site2" in
  (world, dir, a, b)

let rate db n =
  let tbl = Ldbms.Database.find_table db "flights" in
  match
    List.find_opt
      (fun r -> Value.equal r.(0) (Value.Int n))
      (Ldbms.Table.rows tbl)
  with
  | Some r -> r.(2)
  | None -> Value.Null

(* a vital pair: both must prepare, then both commit; K1 undoes T1 *)
let vital_pair = {|
DOLBEGIN
  OPEN aero AT site1 AS aa;
  OPEN bravo AT site2 AS bb;
  PARBEGIN
    TASK T1 NOCOMMIT FOR aa { UPDATE flights SET rate = rate + 10 } ENDTASK;
    TASK T2 NOCOMMIT FOR bb { UPDATE flights SET rate = rate + 10 } ENDTASK;
  PAREND;
  IF (T1=P) AND (T2=P) THEN
  BEGIN COMMIT T1, T2; DOLSTATUS = 0; END;
  ELSE
  BEGIN
    ABORT T1, T2;
    IF (T1=C) THEN
    BEGIN COMP K1 COMPENSATES T1 FOR aa { UPDATE flights SET rate = rate - 10 } ENDCOMP; END;
    DOLSTATUS = 1;
  END;
  CLOSE aa bb;
DOLEND
|}

(* the same program with no compensation anywhere *)
let vital_pair_no_comp = {|
DOLBEGIN
  OPEN aero AT site1 AS aa;
  OPEN bravo AT site2 AS bb;
  PARBEGIN
    TASK T1 NOCOMMIT FOR aa { UPDATE flights SET rate = rate + 10 } ENDTASK;
    TASK T2 NOCOMMIT FOR bb { UPDATE flights SET rate = rate + 10 } ENDTASK;
  PAREND;
  IF (T1=P) AND (T2=P) THEN
  BEGIN COMMIT T1, T2; DOLSTATUS = 0; END;
  ELSE
  BEGIN ABORT T1, T2; DOLSTATUS = 1; END;
  CLOSE aa bb;
DOLEND
|}

(* run [text], arming [trip] the first time a trace line contains [arm_on] —
   the hook that lets a test place a fault precisely inside the 2PC window *)
let run_armed ~world ~dir ?grace ~arm_on ~trip text =
  let armed = ref false in
  let on_event line =
    if (not !armed) && contains line arm_on then begin
      armed := true;
      trip ()
    end
  in
  match
    Engine.run_text ~on_event ?recovery_grace_ms:grace ~directory:dir ~world
      text
  with
  | Ok o ->
      Alcotest.(check bool) "fault was armed" true !armed;
      o
  | Error m -> Alcotest.fail ("engine error: " ^ m)

let test_lost_commit_message_retried () =
  let world, dir, a, b = setup () in
  let o =
    run_armed ~world ~dir ~arm_on:"T2 -> P"
      ~trip:(fun () -> World.lose_next world ~src:"mdbs" ~dst:"site2")
      vital_pair
  in
  (* the commit decision message vanished once; the retry resent it *)
  Alcotest.check status "t1 committed" D.C (Engine.status_of o "T1");
  Alcotest.check status "t2 committed" D.C (Engine.status_of o "T2");
  Alcotest.(check int) "dolstatus" 0 o.Engine.dolstatus;
  Alcotest.(check bool) "retried" true (o.Engine.retries > 0);
  Alcotest.(check int) "nothing left in doubt" 0 o.Engine.in_doubt;
  Alcotest.check value "a updated" (Value.Float 110.0) (rate a 1);
  Alcotest.check value "b updated" (Value.Float 110.0) (rate b 1)

let test_in_doubt_recovers_to_commit () =
  let world, dir, a, b = setup () in
  let o =
    run_armed ~world ~dir ~arm_on:"T2 -> P"
      ~trip:(fun () ->
        (* crash bravo's site for 100 ms: longer than the retry budget of a
           single commit, shorter than the engine's recovery grace *)
        World.set_down_until world "site2" (World.now_ms world +. 100.0))
      vital_pair
  in
  Alcotest.check status "t1 committed" D.C (Engine.status_of o "T1");
  Alcotest.check status "t2 recovered to C" D.C (Engine.status_of o "T2");
  Alcotest.(check int) "recovered count" 1 o.Engine.recovered;
  Alcotest.(check int) "nothing in doubt" 0 o.Engine.in_doubt;
  Alcotest.(check bool) "no split" false o.Engine.vital_split;
  Alcotest.check value "a updated" (Value.Float 110.0) (rate a 1);
  Alcotest.check value "b updated" (Value.Float 110.0) (rate b 1)

let test_permanent_failure_fires_comp () =
  let world, dir, a, b = setup () in
  let o =
    run_armed ~world ~dir ~grace:200.0 ~arm_on:"T2 -> P"
      ~trip:(fun () -> World.set_down world "site2" true)
      vital_pair
  in
  (* T1 committed but T2 can never learn the verdict: the commit verdict
     is revoked, the queued COMP (from the untaken ELSE branch) undoes T1,
     and the group degrades to a clean abort *)
  Alcotest.check status "t1 compensated" D.X (Engine.status_of o "T1");
  Alcotest.check status "k1 ran" D.C (Engine.status_of o "K1");
  Alcotest.check status "t2 presumed abort" D.A (Engine.status_of o "T2");
  Alcotest.(check bool) "no split reported" false o.Engine.vital_split;
  Alcotest.(check int) "t2 still in doubt at the site" 1 o.Engine.in_doubt;
  Alcotest.check value "a undone" (Value.Float 100.0) (rate a 1);
  (* bravo's prepared transaction is still open at the dead site, but its
     update is a staged intent: under snapshot isolation nothing
     uncommitted is ever visible to other readers, and the intent is
     discarded when the site recovers and rolls back per the (revoked)
     abort verdict *)
  Alcotest.check value "b intent invisible" (Value.Float 100.0) (rate b 1)

let test_permanent_failure_without_comp_is_split () =
  let world, dir, a, _b = setup () in
  let o =
    run_armed ~world ~dir ~grace:200.0 ~arm_on:"T2 -> P"
      ~trip:(fun () -> World.set_down world "site2" true)
      vital_pair_no_comp
  in
  Alcotest.check status "t1 stays committed" D.C (Engine.status_of o "T1");
  Alcotest.check status "t2 presumed abort" D.A (Engine.status_of o "T2");
  Alcotest.(check bool) "vital split" true o.Engine.vital_split;
  Alcotest.(check int) "in doubt" 1 o.Engine.in_doubt;
  Alcotest.check value "a kept the update" (Value.Float 110.0) (rate a 1)

let test_transient_exec_outage_aborts_cleanly () =
  let world, dir, a, b = setup () in
  (* bravo's site is down from the start and stays down past every retry:
     the command never takes effect, so the vital pair aborts cleanly —
     no exception escapes, no state is left unknown *)
  World.set_down world "site2" true;
  let o =
    match
      Engine.run_text ~directory:dir ~world vital_pair_no_comp
    with
    | Ok o -> o
    | Error m -> Alcotest.fail ("engine error: " ^ m)
  in
  Alcotest.(check int) "dolstatus" 1 o.Engine.dolstatus;
  Alcotest.check status "t1 aborted" D.A (Engine.status_of o "T1");
  Alcotest.(check bool) "no split" false o.Engine.vital_split;
  Alcotest.check value "a untouched" (Value.Float 100.0) (rate a 1);
  Alcotest.check value "b untouched" (Value.Float 100.0) (rate b 1)

(* both members compensable: a split can always be healed *)
let vital_pair_both_comps = {|
DOLBEGIN
  OPEN aero AT site1 AS aa;
  OPEN bravo AT site2 AS bb;
  PARBEGIN
    TASK T1 NOCOMMIT FOR aa { UPDATE flights SET rate = rate + 10 } ENDTASK;
    TASK T2 NOCOMMIT FOR bb { UPDATE flights SET rate = rate + 10 } ENDTASK;
  PAREND;
  IF (T1=P) AND (T2=P) THEN
  BEGIN COMMIT T1, T2; DOLSTATUS = 0; END;
  ELSE
  BEGIN
    ABORT T1, T2;
    IF (T1=C) THEN
    BEGIN COMP K1 COMPENSATES T1 FOR aa { UPDATE flights SET rate = rate - 10 } ENDCOMP; END;
    IF (T2=C) THEN
    BEGIN COMP K2 COMPENSATES T2 FOR bb { UPDATE flights SET rate = rate - 10 } ENDCOMP; END;
    DOLSTATUS = 1;
  END;
  CLOSE aa bb;
DOLEND
|}

let test_message_loss_storm_still_consistent () =
  (* under heavy seeded loss the outcome must be success or clean abort —
     never a split — and replaying the seed gives the identical outcome *)
  let run_with_seed seed =
    let world, dir, a, b = setup () in
    World.set_loss world ~seed ~prob:0.2;
    match Engine.run_text ~directory:dir ~world vital_pair_both_comps with
    | Error m -> Alcotest.fail ("engine error: " ^ m)
    | Ok o ->
        Alcotest.(check bool) "never split" false o.Engine.vital_split;
        let both v = Value.equal (rate a 1) v && Value.equal (rate b 1) v in
        Alcotest.(check bool) "atomic across sites" true
          (both (Value.Float 110.0) || both (Value.Float 100.0));
        (o.Engine.dolstatus, o.Engine.retries, Engine.status_of o "T1")
  in
  List.iter
    (fun seed ->
      let r1 = run_with_seed seed and r2 = run_with_seed seed in
      Alcotest.(check bool) "deterministic replay" true (r1 = r2))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* ---- connection pool ------------------------------------------------------ *)

module Pool = Narada.Pool
module M = Msql.Msession

let pool_service () =
  let db = Ldbms.Database.create "adb" in
  Ldbms.Database.load db ~name:"t"
    [ Schema.column "x" Ty.Int ]
    [ [| Value.Int 1 |] ];
  Narada.Service.make ~site:"alpha" ~caps:Caps.ingres_like db

let checkout_exn pool svc =
  match Pool.checkout pool svc with
  | Ok lam -> lam
  | Error f -> Alcotest.fail (Lam.failure_message f)

(* a parked connection whose site failed while it idled is broken even
   after the site recovers: checkout must notice, discard it, and dial a
   working replacement *)
let test_pool_stale_after_outage () =
  let w = two_sites () in
  let svc = pool_service () in
  let pool = Pool.create w in
  let lam1 = checkout_exn pool svc in
  Pool.checkin pool lam1;
  Alcotest.(check int) "parked" 1 (Pool.size pool);
  let lam2 = checkout_exn pool svc in
  Alcotest.(check int) "healthy reuse" 1 (Pool.stats pool).Pool.hits;
  Pool.checkin pool lam2;
  (* outage opens and closes entirely while the connection idles *)
  World.advance_ms w 100.0;
  World.schedule_outage w "alpha" ~from_ms:110.0 ~until_ms:120.0;
  World.advance_ms w 50.0;
  Alcotest.(check bool) "site is back up" false (World.is_down w "alpha");
  let lam3 = checkout_exn pool svc in
  Alcotest.(check int) "stale one discarded" 1 (Pool.stats pool).Pool.discarded;
  Alcotest.(check int) "re-dialed" 2 (Pool.stats pool).Pool.misses;
  (match Lam.fetch lam3 "SELECT x FROM t" with
  | Ok rel -> Alcotest.(check int) "replacement works" 1 (Relation.cardinality rel)
  | Error f -> Alcotest.fail (Lam.failure_message f));
  Pool.checkin pool lam3

(* a session holding an open transaction must never be parked: the orphan
   is rolled back by the disconnect, exactly as the LDBMS aborts the
   victim when its client dies *)
let test_pool_refuses_open_txn () =
  let w = two_sites () in
  let svc = pool_service () in
  let pool = Pool.create w in
  let lam = checkout_exn pool svc in
  (match Ldbms.Session.exec_sql (Lam.session lam) "UPDATE t SET x = 2" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "txn open" true
    (Ldbms.Session.in_transaction (Lam.session lam));
  Pool.checkin pool lam;
  Alcotest.(check int) "not parked" 0 (Pool.size pool);
  let lam2 = checkout_exn pool svc in
  Alcotest.(check int) "dialed fresh" 2 (Pool.stats pool).Pool.misses;
  (match Lam.fetch lam2 "SELECT x FROM t" with
  | Ok rel ->
      Alcotest.(check value) "orphan rolled back" (Value.Int 1)
        (List.hd (Relation.rows rel)).(0)
  | Error f -> Alcotest.fail (Lam.failure_message f))

(* session level: with pooling on, a site failing between statements costs
   one discarded connection, not a failed statement *)
let test_pooled_session_survives_outage () =
  let w = two_sites () in
  let directory = Narada.Directory.create () in
  let session = M.create ~world:w ~directory () in
  let db = Ldbms.Database.create "adb" in
  Ldbms.Database.load db ~name:"t"
    [ Schema.column "x" Ty.Int ]
    [ [| Value.Int 1 |]; [| Value.Int 2 |] ];
  Narada.Directory.register directory
    (Narada.Service.make ~site:"alpha" ~caps:Caps.ingres_like db);
  (match M.incorporate_auto session ~service:"adb" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match M.import_all session ~service:"adb" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  M.set_pooling session true;
  let select () =
    match M.exec session "USE adb SELECT x FROM adb.t" with
    | Ok (M.Multitable _) -> ()
    | Ok r -> Alcotest.fail (M.result_to_string r)
    | Error m -> Alcotest.fail m
  in
  select ();
  select ();
  Alcotest.(check bool) "reused between statements" true
    ((M.cache_stats session).M.pool_hits > 0);
  (* the site crashes and recovers between two statements *)
  let now = World.now_ms w in
  World.schedule_outage w "alpha" ~from_ms:(now +. 1.0) ~until_ms:(now +. 2.0);
  World.advance_ms w 10.0;
  select ();
  Alcotest.(check bool) "stale connection discarded" true
    ((M.cache_stats session).M.pool_discarded > 0)

let () =
  Alcotest.run "failures"
    [
      ( "netsim faults",
        [
          Alcotest.test_case "down-until recovers" `Quick test_down_until_recovers;
          Alcotest.test_case "outage window" `Quick test_scheduled_outage_window;
          Alcotest.test_case "lose-next one-shot" `Quick test_lose_next_is_one_shot;
          Alcotest.test_case "seeded loss deterministic" `Quick
            test_seeded_loss_is_deterministic;
        ] );
      ( "injector",
        [
          Alcotest.test_case "set_random deterministic" `Quick
            test_set_random_deterministic;
          Alcotest.test_case "transient classification" `Quick
            test_transient_classification;
        ] );
      ( "retry",
        [
          Alcotest.test_case "backoff deterministic" `Quick
            test_backoff_deterministic_and_bounded;
          Alcotest.test_case "budget exhausted" `Quick test_retry_until_exhausted;
          Alcotest.test_case "transient connect retried" `Quick
            test_transient_connect_refusal_retried;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "lost commit retried" `Quick
            test_lost_commit_message_retried;
          Alcotest.test_case "in-doubt recovers to C" `Quick
            test_in_doubt_recovers_to_commit;
          Alcotest.test_case "permanent failure fires COMP" `Quick
            test_permanent_failure_fires_comp;
          Alcotest.test_case "split without COMP" `Quick
            test_permanent_failure_without_comp_is_split;
          Alcotest.test_case "exec outage aborts cleanly" `Quick
            test_transient_exec_outage_aborts_cleanly;
          Alcotest.test_case "loss storm consistent" `Quick
            test_message_loss_storm_still_consistent;
        ] );
      ( "pool",
        [
          Alcotest.test_case "stale after outage" `Quick
            test_pool_stale_after_outage;
          Alcotest.test_case "refuses open txn" `Quick test_pool_refuses_open_txn;
          Alcotest.test_case "pooled session survives outage" `Quick
            test_pooled_session_survives_outage;
        ] );
    ]
