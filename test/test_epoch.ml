(* Dictionary-epoch invalidation of the compiled data plane: a bump of
   the GDD/AD version (a re-IMPORT simulating a local ALTER at a member
   database) must flush both the compiled-predicate cache and the
   shipped-result cache, while an unchanged epoch keeps both warm. Local
   DDL inside an LDBMS flushes the compiled cache directly. *)
open Sqlcore
module M = Msql.Msession
module Exec = Ldbms.Exec

let col = Schema.column
let s x = Value.Str x
let i x = Value.Int x
let f x = Value.Float x

let sales_schema = [ col "sid" Ty.Int; col "part_id" Ty.Int; col "qty" Ty.Int ]

let parts_schema =
  [ col "pid" Ty.Int; col ~width:16 "pname" Ty.Str; col "price" Ty.Float ]

let make_fed2 () =
  let world = Netsim.World.create () in
  let directory = Narada.Directory.create () in
  let session = M.create ~world ~directory () in
  (* the shipped-result cache is an opt-in reuse mechanism (see the P10
     ablations); epoch staleness is only observable with it enabled *)
  M.set_result_cache session true;
  let sales = List.init 12 (fun k -> [| i k; i (k mod 6); i (k + 1) |]) in
  let parts =
    List.init 60 (fun k -> [| i k; s (Printf.sprintf "part%d" k); f 9.5 |])
  in
  List.iter
    (fun (name, site, tname, schema, rows) ->
      Netsim.World.add_site world (Netsim.Site.make site);
      let db = Ldbms.Database.create name in
      Ldbms.Database.load db ~name:tname schema rows;
      Narada.Directory.register directory
        (Narada.Service.make ~site ~caps:Ldbms.Capabilities.ingres_like db);
      (match M.incorporate_auto session ~service:name with
      | Ok () -> ()
      | Error m -> failwith m);
      match M.import_all session ~service:name with
      | Ok () -> ()
      | Error m -> failwith m)
    [
      ("market", "msite", "sales", sales_schema, sales);
      ("store", "ssite", "parts", parts_schema, parts);
    ];
  (session, world)

let join2 =
  "USE market store SELECT s.sid, p.pname FROM market.sales s, \
   store.parts p WHERE s.part_id = p.pid AND p.price < 100"

(* the compiled-predicate cache is epoch-pinned: re-running the same
   statement under the same epoch hits it; an epoch bump (what
   {!M.engine_start} feeds through {!Exec.set_dict_epoch} after a
   re-IMPORT / simulated local ALTER moves the GDD version) resets it,
   so the re-run recompiles from scratch. Exercised at the LDBMS level,
   where no DDL interferes: the multidatabase path drops its temporary
   MOVE tables at the end of every statement, and local DDL flushes the
   cache too (third test), so post-statement size is not observable
   through {!M.exec}. *)
let test_epoch_bump_resets_compiled_cache () =
  let db = Ldbms.Database.create "w" in
  Ldbms.Database.load db ~name:"crates"
    [ col "cid" Ty.Int; col ~width:8 "dock" Ty.Str; col "mass" Ty.Float ]
    (List.init 50 (fun k ->
         [| i k; s (Printf.sprintf "dock%d" (k mod 5)); f (float_of_int k) |]));
  let session = Ldbms.Session.connect db Ldbms.Capabilities.ingres_like in
  let q = "SELECT cid FROM crates WHERE dock = 'dock2' AND mass < 30" in
  let run () =
    match Ldbms.Session.exec_sql session q with
    | Ok _ -> ()
    | Error m -> Alcotest.fail m
  in
  Exec.set_dict_epoch 1;
  run ();
  let _, misses1, size1 = Exec.compiled_cache_stats () in
  Alcotest.(check bool) "first run populated the compiled cache" true
    (size1 > 0);
  let hits1, _, _ = Exec.compiled_cache_stats () in
  run ();
  let hits2, misses2, _ = Exec.compiled_cache_stats () in
  Alcotest.(check int) "warm re-run compiles nothing new" misses1 misses2;
  Alcotest.(check bool) "warm re-run hits the compiled cache" true
    (hits2 > hits1);
  (* the simulated local ALTER: a GDD/AD version bump moves the epoch *)
  Exec.set_dict_epoch 2;
  let _, _, size_after_bump = Exec.compiled_cache_stats () in
  Alcotest.(check int) "epoch bump emptied the cache" 0 size_after_bump;
  run ();
  let _, misses3, size3 = Exec.compiled_cache_stats () in
  Alcotest.(check bool) "epoch bump forced recompilation" true
    (misses3 > misses2);
  Alcotest.(check bool) "cache repopulated under the new epoch" true
    (size3 > 0);
  (* an unchanged epoch must NOT reset: re-pinning the same value keeps
     the cache warm *)
  Exec.set_dict_epoch 2;
  let _, _, size4 = Exec.compiled_cache_stats () in
  Alcotest.(check int) "same epoch keeps the cache" size3 size4

(* the shipped-result cache is epoch-stamped: the warm re-run is a result
   hit, the post-IMPORT run drops the stale entry and ships again *)
let test_epoch_bump_drops_shipped_results () =
  let session, _world = make_fed2 () in
  (match M.exec session join2 with Ok _ -> () | Error m -> Alcotest.fail m);
  (match M.exec session join2 with Ok _ -> () | Error m -> Alcotest.fail m);
  let cs = M.cache_stats session in
  Alcotest.(check bool) "warm re-run served from the shipped cache" true
    (cs.M.result_hits > 0);
  let hits_before = cs.M.result_hits and misses_before = cs.M.result_misses in
  (match M.import_all session ~service:"store" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match M.exec session join2 with Ok _ -> () | Error m -> Alcotest.fail m);
  let cs = M.cache_stats session in
  Alcotest.(check int) "stale entry was not served" hits_before
    cs.M.result_hits;
  Alcotest.(check bool) "stale entry dropped and reshipped" true
    (cs.M.result_misses > misses_before)

(* compiled-cache keys carry the dictionary identity, so two sessions
   pinning different dictionaries (a multi-session server) no longer
   thrash each other's entries: pinning B's epoch leaves A's warm *)
let test_two_dictionaries_do_not_thrash () =
  let mk name rows =
    let db = Ldbms.Database.create name in
    Ldbms.Database.load db ~name:"crates"
      [ col "cid" Ty.Int; col ~width:8 "dock" Ty.Str ]
      (List.init rows (fun k ->
           [| i k; s (Printf.sprintf "dock%d" (k mod 4)) |]));
    Ldbms.Session.connect db Ldbms.Capabilities.ingres_like
  in
  let sa = mk "wa" 30 and sb = mk "wb" 30 in
  let qa = "SELECT cid FROM crates WHERE dock = 'dock1'" in
  let qb = "SELECT cid FROM crates WHERE dock = 'dock2'" in
  let run sess q =
    match Ldbms.Session.exec_sql sess q with
    | Ok _ -> ()
    | Error m -> Alcotest.fail m
  in
  (* dictionary A (ident 1) populates under its epoch *)
  Exec.set_dict_epoch ~ident:1 1;
  run sa qa;
  let _, _, size_a = Exec.compiled_cache_stats () in
  Alcotest.(check bool) "A populated" true (size_a > 0);
  (* dictionary B (ident 2) pins a different epoch: A's entries survive *)
  Exec.set_dict_epoch ~ident:2 7;
  run sb qb;
  let _, _, size_ab = Exec.compiled_cache_stats () in
  Alcotest.(check bool) "B added, A kept" true (size_ab > size_a);
  (* A pins its (unchanged) epoch again: still warm, nothing recompiled *)
  Exec.set_dict_epoch ~ident:1 1;
  let hits_before, misses_before, _ = Exec.compiled_cache_stats () in
  run sa qa;
  let hits_after, misses_after, _ = Exec.compiled_cache_stats () in
  Alcotest.(check int) "A recompiled nothing" misses_before misses_after;
  Alcotest.(check bool) "A hit its warm entry" true (hits_after > hits_before);
  (* A's own epoch moves: only A's entries go, B's stay *)
  Exec.set_dict_epoch ~ident:1 2;
  let _, _, size_after = Exec.compiled_cache_stats () in
  Alcotest.(check bool) "only A's entries dropped" true
    (size_after < size_ab && size_after > 0)

(* local DDL must flush the compiled cache immediately — a dropped or
   added index/table/view can change what a cached closure captured *)
let test_local_ddl_flushes_compiled_cache () =
  let db = Ldbms.Database.create "w" in
  Ldbms.Database.load db ~name:"stock"
    [ col "sku" Ty.Int; col ~width:8 "bin" Ty.Str ]
    (List.init 40 (fun k -> [| i k; s (Printf.sprintf "bin%d" (k mod 7)) |]));
  let session = Ldbms.Session.connect db Ldbms.Capabilities.ingres_like in
  let q = "SELECT sku FROM stock WHERE bin = 'bin3' AND sku > 5" in
  (match Ldbms.Session.exec_sql session q with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let _, _, size1 = Exec.compiled_cache_stats () in
  Alcotest.(check bool) "select compiled its predicate" true (size1 > 0);
  (match
     Ldbms.Session.exec_sql session "CREATE TABLE scratch (k INTEGER)"
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let _, _, size2 = Exec.compiled_cache_stats () in
  Alcotest.(check int) "DDL flushed the compiled cache" 0 size2

let () =
  Alcotest.run "epoch"
    [
      ( "dictionary epoch",
        [
          Alcotest.test_case "bump resets compiled-predicate cache" `Quick
            test_epoch_bump_resets_compiled_cache;
          Alcotest.test_case "bump drops shipped results" `Quick
            test_epoch_bump_drops_shipped_results;
          Alcotest.test_case "two dictionaries do not thrash" `Quick
            test_two_dictionaries_do_not_thrash;
        ] );
      ( "local DDL",
        [
          Alcotest.test_case "flushes compiled cache" `Quick
            test_local_ddl_flushes_compiled_cache;
        ] );
    ]
