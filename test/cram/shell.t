The MSQL shell runs scripts against the demo federation. The demo script
exercises IMPORT, the paper's multiple SELECT and UPDATE, and EXPLAIN:

  $ ../../bin/msql_shell.exe --script demo.msql
  database avis imported from service avis
  -- avis --
  +------+---------+------+
  | code | cartype | rate |
  +------+---------+------+
  | 1    | sedan   | 45.0 |
  | 3    | compact | 35.0 |
  | 4    | sedan   | 50.0 |
  +------+---------+------+
  -- national --
  +-------+---------+
  | vcode | vty     |
  +-------+---------+
  | 11    | sedan   |
  | 13    | compact |
  +-------+---------+
  update success (DOLSTATUS=0, 30.02 ms)
    continental: C [2 row(s)]
    delta: C [2 row(s)]
    united: C [2 row(s)]
  DOLBEGIN
    PARBEGIN
      OPEN continental AT site1 AS continental;
      OPEN united AT site3 AS united;
    PAREND;
    PARBEGIN
      TASK t_continental NOCOMMIT FOR continental
        { UPDATE flights SET rate = (rate * 2) }
      ENDTASK;
      TASK t_united NOCOMMIT FOR united
        { UPDATE flight SET rates = (rates * 2) }
      ENDTASK;
    PAREND;
    IF (t_continental=P) AND (t_united=P) THEN
    BEGIN
      COMMIT t_continental, t_united;
      DOLSTATUS = 0; -- return code
    END;
    ELSE
    BEGIN
      ABORT t_continental, t_united;
      DOLSTATUS = 1; -- return code
    END;
    PARBEGIN
      CLOSE continental;
      CLOSE united;
    PAREND;
  DOLEND
  

A multitransaction through the shell, with network statistics:

  $ ../../bin/msql_shell.exe --script mtx.msql --stats
  multitransaction committed acceptable state 1 (50.03 ms)
    continental: C [1 row(s)]
    delta: A [1 row(s)]
  [net: 16 messages, 574 bytes, clock 50.03 ms]

Virtual databases and an interdatabase trigger (the trigger's action frees
national's rented vehicle once avis prices exceed 100):

  $ ../../bin/msql_shell.exe --script admin.msql
  multidatabase rentals created
  -- avis --
  +------+
  | code |
  +------+
  | 1    |
  | 3    |
  | 4    |
  +------+
  -- national --
  +-------+
  | vcode |
  +-------+
  | 11    |
  | 13    |
  +-------+
  trigger pricewatch created on avis
  update success (DOLSTATUS=0, 30.02 ms)
    avis: C [3 row(s)]
  -- national --
  +-------+-----------+
  | vcode | vstat     |
  +-------+-----------+
  | 11    | available |
  | 12    | available |
  | 13    | available |
  +-------+-----------+


Errors are diagnostics: they go to stderr and a failing --script run exits
nonzero (the shell used to print them to stdout and always exit 0):

  $ ../../bin/msql_shell.exe --script bad.msql
  error: query is not pertinent for any database in its scope
  [1]

The REPL statement terminator tolerates surrounding whitespace (a `;;`
line with trailing blanks used to be buffered into the statement):

  $ printf 'USE avis\nSELECT code FROM cars WHERE cartype = %s\n;;  \n' "'sedan'" | ../../bin/msql_shell.exe
  MSQL shell — demo federation: continental delta united avis national
  End a statement with `;;` on its own line; ctrl-d quits.
  msql>   ...   ... -- avis --
  +------+
  | code |
  +------+
  | 1    |
  | 4    |
  +------+
  msql> 
