(* Structural tests of the MSQL→DOL translator: task modes per engine
   capability, condition construction, compensation guards, move/cleanup
   structure of decomposed plans, and the acceptable-state cascade. *)
module D = Narada.Dol_ast
module P = Msql.Plangen
module F = Msql.Fixtures
module M = Msql.Msession

let translate ?caps sql =
  let fx = F.make ?caps () in
  match M.translate fx.F.session sql with
  | Ok prog -> prog
  | Error m -> Alcotest.fail m

let rec find_tasks = function
  | [] -> []
  | D.Task t :: rest -> t :: find_tasks rest
  | D.Parallel inner :: rest -> find_tasks inner @ find_tasks rest
  | D.If (_, a, b) :: rest -> find_tasks a @ find_tasks b @ find_tasks rest
  | _ :: rest -> find_tasks rest

(* projections of inline-record constructors *)
let rec find_moves = function
  | [] -> []
  | D.Move { mname; src; dst; dest_table; query; _ } :: rest ->
      (mname, src, dst, dest_table, query) :: find_moves rest
  | D.Parallel inner :: rest -> find_moves inner @ find_moves rest
  | D.If (_, a, b) :: rest -> find_moves a @ find_moves b @ find_moves rest
  | _ :: rest -> find_moves rest

let rec find_comps = function
  | [] -> []
  | D.Comp { cname; compensates; target; commands } :: rest ->
      (cname, compensates, target, commands) :: find_comps rest
  | D.Parallel inner :: rest -> find_comps inner @ find_comps rest
  | D.If (_, a, b) :: rest -> find_comps a @ find_comps b @ find_comps rest
  | _ :: rest -> find_comps rest

let rec find_ifs = function
  | [] -> []
  | D.If (c, a, b) :: rest -> (c :: find_ifs a @ find_ifs b) @ find_ifs rest
  | D.Parallel inner :: rest -> find_ifs inner @ find_ifs rest
  | _ :: rest -> find_ifs rest

let task_named prog name =
  match List.find_opt (fun (t : D.task) -> t.D.tname = name) (find_tasks prog) with
  | Some t -> t
  | None -> Alcotest.failf "no task %s" name

let vital_update = {|
USE continental VITAL delta united VITAL
UPDATE flight% SET rate% = rate% * 1.1
|}

let test_vital_2pc_tasks_nocommit () =
  let prog = translate vital_update in
  Alcotest.(check bool) "continental nocommit" true
    ((task_named prog "t_continental").D.mode = D.No_commit);
  Alcotest.(check bool) "united nocommit" true
    ((task_named prog "t_united").D.mode = D.No_commit);
  Alcotest.(check bool) "delta commits" true
    ((task_named prog "t_delta").D.mode = D.With_commit)

let test_vital_autocommit_task_commits () =
  (* continental autocommit + COMP: its task must run in commit mode and a
     guarded compensation must exist in the else branch *)
  let prog =
    translate
      ~caps:[ ("continental", Ldbms.Capabilities.sybase_like) ]
      (vital_update
      ^ "COMP continental UPDATE flights SET rate = rate / 1.1")
  in
  Alcotest.(check bool) "continental with-commit" true
    ((task_named prog "t_continental").D.mode = D.With_commit);
  (match find_comps prog with
  | [ (_, compensates, target, _) ] ->
      Alcotest.(check (option string)) "compensates" (Some "t_continental")
        compensates;
      Alcotest.(check string) "target" "continental" target
  | l -> Alcotest.failf "expected one comp, got %d" (List.length l));
  (* the comp is guarded by (t_continental=C) *)
  let has_guard =
    List.exists
      (function D.Status_is ("t_continental", D.C) -> true | _ -> false)
      (find_ifs prog)
  in
  Alcotest.(check bool) "guard" true has_guard

let test_no_vital_no_conditions () =
  let prog = translate "USE continental delta UPDATE flight% SET rate% = 1" in
  Alcotest.(check int) "no IF" 0 (List.length (find_ifs prog));
  List.iter
    (fun (t : D.task) ->
      Alcotest.(check bool) "all with-commit" true (t.D.mode = D.With_commit))
    (find_tasks prog)

let test_retrieval_tasks_commit_mode () =
  let prog = translate "USE continental VITAL delta SELECT %nu FROM flight%" in
  List.iter
    (fun (t : D.task) ->
      Alcotest.(check bool) "reads commit" true (t.D.mode = D.With_commit))
    (find_tasks prog)

let test_multiple_matches_one_db_get_separate_tasks () =
  (* f% matches f838 and flights in continental -> two tasks, so both
     partial results are kept *)
  let prog = translate "USE continental SELECT % FROM f%" in
  let tasks = find_tasks prog in
  Alcotest.(check int) "two tasks" 2 (List.length tasks)

let test_global_plan_structure () =
  let prog =
    translate
      {|USE avis national
        SELECT c.code, v.vcode FROM avis.cars c, national.vehicle v
        WHERE c.cartype = v.vty|}
  in
  (match find_moves prog with
  | [ (_, src, dst, dest_table, _) ] ->
      Alcotest.(check string) "move from national" "national" src;
      Alcotest.(check string) "to avis" "avis" dst;
      Alcotest.(check string) "tmp" "msql_tmp_1" dest_table
  | l -> Alcotest.failf "expected one move, got %d" (List.length l));
  let q_task = task_named prog "t_q" in
  Alcotest.(check string) "coordinator" "avis" q_task.D.target;
  let clean = task_named prog "t_clean" in
  Alcotest.(check bool) "cleanup drops tmp" true
    (Astring_contains.contains clean.D.commands "DROP TABLE msql_tmp_1")

let test_mtx_cascade_structure () =
  let prog =
    translate
      {|BEGIN MULTITRANSACTION
          USE continental delta
          LET fltab.sstat BE f838.seatstatus f747.sstat
          UPDATE fltab SET sstat = 'HOLD';
        COMMIT
          continental
          delta
        END MULTITRANSACTION|}
  in
  (* two acceptable states -> an IF whose else contains another IF *)
  let rec depth = function
    | D.If (_, _, els) -> 1 + List.fold_left (fun acc s -> max acc (depth s)) 0 els
    | _ -> 0
  in
  let max_depth = List.fold_left (fun acc s -> max acc (depth s)) 0 prog in
  Alcotest.(check int) "nested cascade" 2 max_depth;
  (* 2PC participants are NOCOMMIT: held prepared until the commit point *)
  List.iter
    (fun (t : D.task) ->
      Alcotest.(check bool) "held prepared" true (t.D.mode = D.No_commit))
    (find_tasks prog)

let test_open_sites_from_ad () =
  let prog = translate "USE continental SELECT %nu FROM flight%" in
  match
    List.find_opt (function D.Open _ -> true | _ -> false) prog
  with
  | Some (D.Open { open_site = Some "site1"; _ }) -> ()
  | Some (D.Open { open_site; _ }) ->
      Alcotest.failf "wrong site %s" (Option.value open_site ~default:"none")
  | _ -> Alcotest.fail "no open"

let test_unincorporated_service_refused () =
  let fx = F.make () in
  (* forge a GDD-only database with no AD entry *)
  Msql.Gdd.import_table (M.gdd fx.F.session) ~db:"ghost" ~table:"t"
    [ Sqlcore.Schema.column "a" Sqlcore.Ty.Int ];
  match M.translate fx.F.session "USE ghost SELECT a FROM t" with
  | Error m ->
      Alcotest.(check bool) "mentions incorporate" true
        (Astring_contains.contains m "INCORPORATE")
  | Ok _ -> Alcotest.fail "must refuse"

let test_programs_reparse () =
  (* every generated plan must round-trip through the DOL concrete syntax *)
  List.iter
    (fun sql ->
      let prog = translate sql in
      let printed = Narada.Dol_pp.program_to_string prog in
      Alcotest.(check bool) ("reparse: " ^ sql) true
        (Narada.Dol_parser.parse printed = prog))
    [
      vital_update;
      "USE avis national SELECT %code FROM %";
      "USE avis national SELECT c.code, v.vcode FROM avis.cars c, \
       national.vehicle v WHERE c.cartype = v.vty";
      "USE continental delta UPDATE flight% SET rate% = 1";
    ]

let () =
  Alcotest.run "plangen"
    [
      ( "replicated",
        [
          Alcotest.test_case "vital 2pc modes" `Quick test_vital_2pc_tasks_nocommit;
          Alcotest.test_case "autocommit comp" `Quick test_vital_autocommit_task_commits;
          Alcotest.test_case "no vital" `Quick test_no_vital_no_conditions;
          Alcotest.test_case "retrieval modes" `Quick test_retrieval_tasks_commit_mode;
          Alcotest.test_case "multi-match tasks" `Quick test_multiple_matches_one_db_get_separate_tasks;
          Alcotest.test_case "sites from AD" `Quick test_open_sites_from_ad;
          Alcotest.test_case "needs incorporation" `Quick test_unincorporated_service_refused;
        ] );
      ( "global",
        [ Alcotest.test_case "move/coordinator/cleanup" `Quick test_global_plan_structure ] );
      ( "mtx",
        [ Alcotest.test_case "cascade" `Quick test_mtx_cascade_structure ] );
      ( "syntax",
        [ Alcotest.test_case "reparse" `Quick test_programs_reparse ] );
    ]
