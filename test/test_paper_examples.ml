(* Reproduction of every worked example in the paper, with data assertions.
   Experiment ids E1..E6 refer to DESIGN.md's experiment index. *)
open Sqlcore
module F = Msql.Fixtures
module M = Msql.Msession
module D = Narada.Dol_ast

let value = Alcotest.testable Value.pp Value.equal

let exec fx sql =
  match M.exec fx.F.session sql with
  | Ok r -> r
  | Error m -> Alcotest.fail ("MSQL error: " ^ m)

let scan fx db table = F.scan fx ~db ~table

let column rel name =
  let idx =
    match Schema.find_index (Relation.schema rel) name with
    | Some i -> i
    | None -> Alcotest.failf "no column %s" name
  in
  List.map (fun row -> row.(idx)) (Relation.rows rel)

(* ---- E1: §2 multiple SELECT ------------------------------------------------- *)

let e1_query = {|
USE avis national
LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
SELECT %code, type, ~rate
FROM car
WHERE status = 'available'
|}

let test_e1_multitable_shape () =
  let fx = F.make () in
  match exec fx e1_query with
  | M.Multitable mt ->
      Alcotest.(check (list string)) "two parts" [ "avis"; "national" ]
        (Msql.Multitable.databases mt);
      let avis = Option.get (Msql.Multitable.find mt "avis") in
      let national = Option.get (Msql.Multitable.find mt "national") in
      (* avis part has the optional rate column, national's does not *)
      Alcotest.(check (list string)) "avis columns" [ "code"; "cartype"; "rate" ]
        (Schema.names (Relation.schema avis));
      Alcotest.(check (list string)) "national columns" [ "vcode"; "vty" ]
        (Schema.names (Relation.schema national));
      Alcotest.(check int) "avis rows" 3 (Relation.cardinality avis);
      Alcotest.(check int) "national rows" 2 (Relation.cardinality national)
  | _ -> Alcotest.fail "expected a multitable"

let test_e1_only_available_cars () =
  let fx = F.make () in
  match exec fx e1_query with
  | M.Multitable mt ->
      let avis = Option.get (Msql.Multitable.find mt "avis") in
      List.iter
        (fun code ->
          Alcotest.(check bool) "available only" true
            (List.mem code [ Value.Int 1; Value.Int 3; Value.Int 4 ]))
        (column avis "code")
  | _ -> Alcotest.fail "expected a multitable"

(* ---- E2: §3.2 multiple update ------------------------------------------------ *)

let e2_query = {|
USE continental delta united
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'
|}

let test_e2_updates_all_three () =
  let fx = F.make () in
  (match exec fx e2_query with
  | M.Update_report { outcome = M.Success; details; dolstatus = 0; _ } ->
      Alcotest.(check int) "three dbs" 3 (List.length details);
      List.iter
        (fun r -> Alcotest.(check int) "two rows each" 2 (Option.get r.M.raffected))
        details
  | M.Update_report _ -> Alcotest.fail "expected success"
  | _ -> Alcotest.fail "expected an update report");
  (* continental flight 101 Houston->San Antonio was 100.0 *)
  let flights = scan fx "continental" "flights" in
  let rate_of n =
    List.find_map
      (fun row -> if Value.equal row.(0) (Value.Int n) then Some row.(6) else None)
      (Relation.rows flights)
    |> Option.get
  in
  (match rate_of 101 with
  | Value.Float f -> Alcotest.(check (float 1e-6)) "raised 10%" 110.0 f
  | _ -> Alcotest.fail "rate type");
  (* Houston->Dallas untouched *)
  (match rate_of 103 with
  | Value.Float f -> Alcotest.(check (float 1e-6)) "untouched" 80.0 f
  | _ -> Alcotest.fail "rate type");
  (* united's differently-named rates column also updated: flight 301 was 95 *)
  let uflights = scan fx "united" "flight" in
  match
    List.find_map
      (fun row -> if Value.equal row.(0) (Value.Int 301) then Some row.(6) else None)
      (Relation.rows uflights)
  with
  | Some (Value.Float f) -> Alcotest.(check (float 1e-6)) "united raised" 104.5 f
  | _ -> Alcotest.fail "united flight missing"

(* ---- E3: §3.2.1 vital update --------------------------------------------------- *)

let e3_query = {|
USE continental VITAL delta united VITAL
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'
|}

let test_e3_success_path () =
  let fx = F.make () in
  match exec fx e3_query with
  | M.Update_report { outcome = M.Success; details; _ } ->
      List.iter
        (fun r ->
          Alcotest.(check bool) "all committed" true (r.M.rstatus = D.C))
        details
  | _ -> Alcotest.fail "expected success"

(* ---- E6: §4.3 generated DOL program --------------------------------------------- *)

let test_e6_translator_output () =
  let fx = F.make () in
  (* golden text checks the paper-shaped §4.3 program; the dataflow scheduler
     would regroup the opens into an extra PARBEGIN wave *)
  M.set_dataflow fx.F.session false;
  match M.translate fx.F.session e3_query with
  | Error m -> Alcotest.fail m
  | Ok prog ->
      let expected = "DOLBEGIN\n\
                      \  OPEN continental AT site1 AS continental;\n\
                      \  OPEN delta AT site2 AS delta;\n\
                      \  OPEN united AT site3 AS united;\n\
                      \  PARBEGIN\n\
                      \    TASK t_continental NOCOMMIT FOR continental\n\
                      \      { UPDATE flights SET rate = (rate * 1.1) WHERE ((source = 'Houston') AND (destination = 'San Antonio')) }\n\
                      \    ENDTASK;\n\
                      \    TASK t_delta FOR delta\n\
                      \      { UPDATE flight SET rate = (rate * 1.1) WHERE ((source = 'Houston') AND (dest = 'San Antonio')) }\n\
                      \    ENDTASK;\n\
                      \    TASK t_united NOCOMMIT FOR united\n\
                      \      { UPDATE flight SET rates = (rates * 1.1) WHERE ((sour = 'Houston') AND (dest = 'San Antonio')) }\n\
                      \    ENDTASK;\n\
                      \  PAREND;\n\
                      \  IF (t_continental=P) AND (t_united=P) THEN\n\
                      \  BEGIN\n\
                      \    COMMIT t_continental, t_united;\n\
                      \    DOLSTATUS = 0; -- return code\n\
                      \  END;\n\
                      \  ELSE\n\
                      \  BEGIN\n\
                      \    ABORT t_continental, t_united;\n\
                      \    DOLSTATUS = 1; -- return code\n\
                      \  END;\n\
                      \  CLOSE continental delta united;\n\
                      DOLEND\n"
      in
      Alcotest.(check string) "golden DOL program" expected
        (Narada.Dol_pp.program_to_string prog);
      (* and the printed program must itself parse *)
      ignore (Narada.Dol_parser.parse (Narada.Dol_pp.program_to_string prog))

(* ---- E4: §3.3 compensation ------------------------------------------------------- *)

let e4_query = {|
USE continental VITAL delta united VITAL
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'
COMP continental
UPDATE flights
SET rate = rate / 1.1
WHERE source = 'Houston' AND destination = 'San Antonio'
|}

let autocommit_continental =
  [ ("continental", Ldbms.Capabilities.sybase_like) ]

let test_e4_requires_comp () =
  let fx = F.make ~caps:autocommit_continental () in
  (* without COMP, the prototype refuses the query (§3.3) *)
  match M.exec fx.F.session e3_query with
  | Error m ->
      Alcotest.(check bool) "mentions COMP" true
        (Astring_contains.contains m "COMP")
  | Ok _ -> Alcotest.fail "expected refusal"

let test_e4_comp_allows_query () =
  let fx = F.make ~caps:autocommit_continental () in
  match exec fx e4_query with
  | M.Update_report { outcome = M.Success; _ } -> ()
  | r -> Alcotest.fail ("expected success, got " ^ M.result_to_string r)

(* ---- E5: §3.4 travel-agent multitransaction ---------------------------------------- *)

let e5_mtx = {|
BEGIN MULTITRANSACTION
  USE continental delta
  LET fltab.snu.sstat.clname BE
    f838.seatnu.seatstatus.clientname
    f747.snu.sstat.passname
  UPDATE fltab
  SET sstat = 'TAKEN', clname = 'wenders'
  WHERE snu = ( SELECT MIN(snu) FROM fltab WHERE sstat = 'FREE');
  USE avis national
  LET cartab.ccode.cstat BE
    cars.code.carst
    vehicle.vcode.vstat
  UPDATE cartab
  SET cstat = 'TAKEN', from = '07-04-64', to = '04-16-92', client = 'wenders'
  WHERE ccode = ( SELECT MIN(ccode) FROM cartab WHERE cstat = 'available');
COMMIT
  continental AND national
  delta AND avis
END MULTITRANSACTION
|}

let test_e5_first_state_preferred () =
  let fx = F.make () in
  (match exec fx e5_mtx with
  | M.Mtx_report { chosen = Some 0; incorrect = false; _ } -> ()
  | r -> Alcotest.fail ("expected first state, got " ^ M.result_to_string r));
  (* continental seat 2 (lowest FREE) now TAKEN by wenders *)
  let seats = scan fx "continental" "f838" in
  (match
     List.find_opt (fun r -> Value.equal r.(0) (Value.Int 2)) (Relation.rows seats)
   with
  | Some row ->
      Alcotest.check value "taken" (Value.Str "TAKEN") row.(2);
      Alcotest.check value "client" (Value.Str "wenders") row.(3)
  | None -> Alcotest.fail "seat 2 missing");
  (* delta seat 1 rolled back to FREE *)
  let dseats = scan fx "delta" "f747" in
  (match
     List.find_opt (fun r -> Value.equal r.(0) (Value.Int 1)) (Relation.rows dseats)
   with
  | Some row -> Alcotest.check value "delta rolled back" (Value.Str "FREE") row.(2)
  | None -> Alcotest.fail "delta seat missing");
  (* national vehicle 11 TAKEN, avis car 1 rolled back *)
  let vehicles = scan fx "national" "vehicle" in
  (match
     List.find_opt (fun r -> Value.equal r.(0) (Value.Int 11)) (Relation.rows vehicles)
   with
  | Some row -> Alcotest.check value "national taken" (Value.Str "TAKEN") row.(2)
  | None -> Alcotest.fail "vehicle 11 missing");
  let cars = scan fx "avis" "cars" in
  match
    List.find_opt (fun r -> Value.equal r.(0) (Value.Int 1)) (Relation.rows cars)
  with
  | Some row -> Alcotest.check value "avis rolled back" (Value.Str "available") row.(3)
  | None -> Alcotest.fail "car 1 missing"

let test_e5_falls_back_to_second_state () =
  let fx = F.make () in
  (* make continental's subquery fail: its site goes down *)
  Netsim.World.set_down fx.F.world "site1" true;
  match exec fx e5_mtx with
  | M.Mtx_report { chosen = Some 1; incorrect = false; details; _ } ->
      (* delta AND avis committed; national rolled back *)
      let status db =
        (List.find (fun r -> r.M.rdb = db) details).M.rstatus
      in
      Alcotest.(check bool) "delta committed" true (status "delta" = D.C);
      Alcotest.(check bool) "avis committed" true (status "avis" = D.C);
      Alcotest.(check bool) "national undone" true (status "national" = D.A)
  | r -> Alcotest.fail ("expected second state, got " ^ M.result_to_string r)

let test_e5_total_failure_aborts_all () =
  let fx = F.make () in
  Netsim.World.set_down fx.F.world "site1" true;
  (* continental down *)
  Netsim.World.set_down fx.F.world "site2" true;
  (* delta down: no acceptable state reachable *)
  (match exec fx e5_mtx with
  | M.Mtx_report { chosen = None; incorrect = false; _ } -> ()
  | r -> Alcotest.fail ("expected failure, got " ^ M.result_to_string r));
  (* nothing committed anywhere *)
  let cars = scan fx "avis" "cars" in
  List.iter
    (fun row ->
      Alcotest.(check bool) "no wenders" false
        (Value.equal row.(6) (Value.Str "wenders")))
    (Relation.rows cars)

let () =
  Alcotest.run "paper-examples"
    [
      ( "E1 select",
        [
          Alcotest.test_case "multitable shape" `Quick test_e1_multitable_shape;
          Alcotest.test_case "content" `Quick test_e1_only_available_cars;
        ] );
      ( "E2 update",
        [ Alcotest.test_case "all three airlines" `Quick test_e2_updates_all_three ] );
      ( "E3 vital",
        [ Alcotest.test_case "success path" `Quick test_e3_success_path ] );
      ( "E6 translator",
        [ Alcotest.test_case "golden DOL" `Quick test_e6_translator_output ] );
      ( "E4 compensation",
        [
          Alcotest.test_case "refusal without COMP" `Quick test_e4_requires_comp;
          Alcotest.test_case "accepted with COMP" `Quick test_e4_comp_allows_query;
        ] );
      ( "E5 multitransaction",
        [
          Alcotest.test_case "first state" `Quick test_e5_first_state_preferred;
          Alcotest.test_case "fallback state" `Quick test_e5_falls_back_to_second_state;
          Alcotest.test_case "total failure" `Quick test_e5_total_failure_aborts_all;
        ] );
    ]
