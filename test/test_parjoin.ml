(* Differential tests for intra-operator parallelism.

   The contract under test: the partitioned parallel hash join and the
   chunked parallel filter are byte-identical — rows, order,
   observations, typed trace, metrics JSON — to their sequential
   counterparts at pool widths 1, 2 and 4, because every decision they
   make (partition count, partition assignment, chunk boundaries)
   depends only on the data and the configuration, never on the width.

   Three layers:
   - Relation-level: parallel_hash_join / parallel_filter against
     hash_join / filter over the data shapes that stress partitioning —
     skewed keys, empty partitions, exact big-int keys above 2^53, NULL
     keys, empty sides, multi-key joins, mixed Int/Float key classes.
   - Session-level: the executor's parallel path forced on (low row
     floor), the same query run at widths 1/2/4; rows and Obs_parallel
     observations must match, and the full MSQL pipeline must produce
     identical results, typed traces and metrics JSON at every width.
   - Engine-level: the per-branch buffer freelist actually recycles
     buffers across domain-pool blocks. *)

open Sqlcore
module F = Msql.Fixtures
module M = Msql.Msession
module Trace = Narada.Trace

let col = Schema.column
let i x = Value.Int x
let f x = Value.Float x

let widths = [ 1; 2; 4 ]

let with_pools body =
  let pools = List.map (fun w -> Taskpool.create ~domains:w) widths in
  Fun.protect
    ~finally:(fun () -> List.iter Taskpool.shutdown pools)
    (fun () -> body pools)

(* ---- Relation level --------------------------------------------------- *)

(* every width x partition-count cell must equal the sequential join, and
   the reported stats must be identical across widths (they are data- and
   config-dependent only) *)
let check_join name ?(partition_counts = [ 1; 2; 3; 8 ]) a b ~keys =
  let seq = Relation.hash_join a b ~keys in
  with_pools (fun pools ->
      List.iter
        (fun p ->
          let stats_seen = ref None in
          List.iter
            (fun pool ->
              let r, stats =
                Relation.parallel_hash_join ~pool ~partitions:p a b ~keys
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s: width %d, %d partition(s)" name
                   (Taskpool.size pool) p)
                true (Relation.equal r seq);
              match !stats_seen with
              | None -> stats_seen := Some stats
              | Some s ->
                  Alcotest.(check (triple int int int))
                    (Printf.sprintf "%s: stats width-invariant at %d" name p)
                    Relation.(s.pj_partitions, s.pj_build_rows, s.pj_probe_rows)
                    Relation.(
                      stats.pj_partitions, stats.pj_build_rows,
                      stats.pj_probe_rows))
            pools)
        partition_counts)

let two_cols na nb = [ col na Ty.Int; col nb Ty.Int ]

let test_parjoin_uniform () =
  let b =
    Relation.make (two_cols "b" "bk")
      (List.init 200 (fun k -> [| i k; i (k mod 50) |]))
  and a =
    Relation.make (two_cols "p" "pk")
      (List.init 170 (fun k -> [| i k; i (k mod 60) |]))
  in
  check_join "uniform" a b ~keys:[ (1, 1) ]

let test_parjoin_skewed () =
  (* every build row lands in one bucket of one partition *)
  let b =
    Relation.make (two_cols "b" "bk") (List.init 120 (fun k -> [| i k; i 7 |]))
  and a =
    Relation.make (two_cols "p" "pk")
      (List.init 90 (fun k -> [| i k; i (if k mod 3 = 0 then 7 else k) |]))
  in
  check_join "skewed" a b ~keys:[ (1, 1) ]

let test_parjoin_empty_partitions () =
  (* two distinct keys spread over eight requested partitions: most
     partitions hold an empty table and must contribute nothing *)
  let b =
    Relation.make (two_cols "b" "bk")
      (List.init 60 (fun k -> [| i k; i (k mod 2) |]))
  and a =
    Relation.make (two_cols "p" "pk")
      (List.init 40 (fun k -> [| i k; i (k mod 4) |]))
  in
  check_join "empty partitions" a b ~keys:[ (1, 1) ] ~partition_counts:[ 8 ]

let test_parjoin_bigint_keys () =
  (* adjacent Ints above 2^53 share a float image; the key encoding must
     keep them distinct in the parallel path exactly as in the sequential
     one *)
  let big = 9007199254740992 (* 2^53 *) in
  let b =
    Relation.make (two_cols "b" "bk")
      [ [| i 0; i big |]; [| i 1; i (big + 1) |]; [| i 2; i (big + 2) |] ]
  and a =
    Relation.make (two_cols "p" "pk")
      [ [| i 10; i big |]; [| i 11; i (big + 1) |] ]
  in
  let seq = Relation.hash_join a b ~keys:[ (1, 1) ] in
  Alcotest.(check int) "bigint: exactly the two true matches" 2
    (Relation.cardinality seq);
  check_join "bigint" a b ~keys:[ (1, 1) ]

let test_parjoin_null_keys () =
  (* NULL keys never match, on either side *)
  let b =
    Relation.make (two_cols "b" "bk")
      [ [| i 0; Value.Null |]; [| i 1; i 5 |]; [| i 2; Value.Null |] ]
  and a =
    Relation.make (two_cols "p" "pk")
      [ [| i 10; Value.Null |]; [| i 11; i 5 |] ]
  in
  let seq = Relation.hash_join a b ~keys:[ (1, 1) ] in
  Alcotest.(check int) "null keys: single non-null match" 1
    (Relation.cardinality seq);
  check_join "null keys" a b ~keys:[ (1, 1) ]

let test_parjoin_empty_sides () =
  let some =
    Relation.make (two_cols "x" "xk")
      (List.init 30 (fun k -> [| i k; i (k mod 5) |]))
  and none = Relation.make (two_cols "y" "yk") [] in
  check_join "empty build" some none ~keys:[ (1, 1) ];
  check_join "empty probe" none some ~keys:[ (1, 1) ];
  check_join "both empty" none none ~keys:[ (1, 1) ]

let test_parjoin_multikey_mixed () =
  (* two key columns, one carrying mixed Int/Float values that compare
     numerically equal across classes *)
  let schema k v = [ col k Ty.Int; col v Ty.Float ] in
  let b =
    Relation.make (schema "bk" "bv")
      (List.init 80 (fun k ->
           [| i (k mod 10); (if k mod 2 = 0 then i (k mod 4) else f (float_of_int (k mod 4))) |]))
  and a =
    Relation.make (schema "pk" "pv")
      (List.init 70 (fun k ->
           [| i (k mod 12); (if k mod 3 = 0 then f (float_of_int (k mod 4)) else i (k mod 4)) |]))
  in
  let seq = Relation.hash_join a b ~keys:[ (0, 0); (1, 1) ] in
  Alcotest.(check bool) "multikey: joins across Int/Float classes" true
    (Relation.cardinality seq > 0);
  check_join "multikey mixed" a b ~keys:[ (0, 0); (1, 1) ]

let test_parfilter_matches_sequential () =
  let t =
    Relation.make
      [ col "k" Ty.Int; col "v" Ty.Float ]
      (List.init 101 (fun k -> [| i k; f (float_of_int ((k * 37) mod 97)) |]))
  in
  let preds =
    [ ("some", fun r -> match r.(0) with Value.Int n -> n mod 3 = 0 | _ -> false);
      ("all", fun _ -> true);
      ("none", fun _ -> false) ]
  in
  with_pools (fun pools ->
      List.iter
        (fun (pname, p) ->
          let seq = Relation.filter p t in
          List.iter
            (fun pool ->
              List.iter
                (fun chunks ->
                  let r = Relation.parallel_filter ~pool ~chunks p t in
                  Alcotest.(check bool)
                    (Printf.sprintf "filter %s: width %d, %d chunk(s)" pname
                       (Taskpool.size pool) chunks)
                    true (Relation.equal r seq))
                [ 1; 2; 5; 200 ])
            pools)
        preds;
      (* empty input, any chunking *)
      let empty = Relation.make [ col "k" Ty.Int ] [] in
      List.iter
        (fun pool ->
          Alcotest.(check bool) "filter empty" true
            (Relation.equal
               (Relation.parallel_filter ~pool ~chunks:4 (fun _ -> true) empty)
               empty))
        pools)

(* ---- Session level ---------------------------------------------------- *)

(* restore the executor defaults whatever a test does to them *)
let with_parallel_exec ?enabled ?min_rows ?max_partitions ?width body =
  Ldbms.Exec.set_parallel_exec ?enabled ?min_rows ?max_partitions ?width ();
  Fun.protect
    ~finally:(fun () ->
      Ldbms.Exec.set_parallel_exec ~enabled:true ~min_rows:8192
        ~max_partitions:8 ~width:0 ())
    body

let site_db rows =
  let db = Ldbms.Database.create "w" in
  Ldbms.Database.load db ~name:"build_side" (two_cols "b" "bk")
    (List.init rows (fun k -> [| i k; i (k * 7 mod rows) |]));
  Ldbms.Database.load db ~name:"probe_side" (two_cols "p" "pk")
    (List.init rows (fun k -> [| i k; i (k mod (max 1 (rows / 4))) |]));
  db

(* the parallel path forced on (row floor 1): rows and Obs_parallel
   streams must be identical at widths 1, 2 and 4 *)
let test_session_width_invariance () =
  let run ~width sql =
    with_parallel_exec ~enabled:true ~min_rows:1 ~width (fun () ->
        let session =
          Ldbms.Session.connect (site_db 64) Ldbms.Capabilities.ingres_like
        in
        let obs = ref [] in
        Ldbms.Session.set_observer session
          (Some
             (function
               | Ldbms.Session.Obs_parallel { op; partitions; build_rows; probe_rows } ->
                   obs :=
                     Printf.sprintf "%s/%d/%d/%d" op partitions build_rows
                       probe_rows
                     :: !obs
               | _ -> ()));
        match Ldbms.Session.exec_sql session sql with
        | Ok (Ldbms.Session.Rows r) -> (r, List.rev !obs)
        | Ok _ -> Alcotest.fail "expected rows"
        | Error m -> Alcotest.fail m)
  in
  List.iter
    (fun (name, sql) ->
      let ref_rows, ref_obs = run ~width:1 sql in
      Alcotest.(check bool)
        (name ^ ": parallel path actually ran")
        true (ref_obs <> []);
      List.iter
        (fun width ->
          let rows, obs = run ~width sql in
          Alcotest.(check bool)
            (Printf.sprintf "%s: rows identical at width %d" name width)
            true (Relation.equal rows ref_rows);
          Alcotest.(check (list string))
            (Printf.sprintf "%s: observations identical at width %d" name width)
            ref_obs obs)
        [ 2; 4 ])
    [ ("join",
       "SELECT b.b, p.p FROM build_side b, probe_side p WHERE b.bk = p.pk");
      ("filter", "SELECT b FROM build_side WHERE bk > 10") ]

(* the row floor really gates the path: at the default floor this small
   input stays sequential and emits no observation *)
let test_session_floor_gates () =
  with_parallel_exec ~enabled:true (fun () ->
      let session =
        Ldbms.Session.connect (site_db 64) Ldbms.Capabilities.ingres_like
      in
      let hits = ref 0 in
      Ldbms.Session.set_observer session
        (Some (function Ldbms.Session.Obs_parallel _ -> incr hits | _ -> ()));
      (match
         Ldbms.Session.exec_sql session
           "SELECT b.b, p.p FROM build_side b, probe_side p WHERE b.bk = p.pk"
       with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m);
      Alcotest.(check int) "below the floor: sequential, no observation" 0
        !hits)

(* full MSQL pipeline with the parallel path forced on: results, typed
   trace and metrics JSON must be identical at widths 1/2/4, and the
   trace/metrics must actually record parallel executions *)
let test_msession_differential () =
  let stmts =
    [ {|USE avis national
LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
SELECT %code, type, ~rate FROM car WHERE status = 'available'|} ]
  in
  let run ~width () =
    with_parallel_exec ~enabled:true ~min_rows:1 ~width (fun () ->
        let fx = F.make () in
        let events = ref [] in
        M.set_typed_trace fx.F.session
          (Some
             (fun e ->
               events :=
                 Printf.sprintf "%.6f|%s" e.Trace.at_ms
                   (Trace.render_kind e.Trace.kind)
                 :: !events));
        let results =
          List.map
            (fun sql ->
              match M.exec fx.F.session sql with
              | Ok r -> M.result_to_string r
              | Error m -> "ERROR: " ^ m)
            stmts
        in
        (results, List.rev !events, M.metrics_json fx.F.session,
         (M.metrics fx.F.session).Msql.Metrics.par_filters))
  in
  let ref_results, ref_trace, ref_metrics, ref_filters = run ~width:1 () in
  Alcotest.(check bool) "pipeline exercised the parallel path" true
    (ref_filters > 0);
  Alcotest.(check bool) "trace records parallel events" true
    (List.exists
       (fun l ->
         (* rendered as "parallel filter at <site>: ..." *)
         let needle = "parallel " in
         let rec find k =
           k + String.length needle <= String.length l
           && (String.equal (String.sub l k (String.length needle)) needle
              || find (k + 1))
         in
         find 0)
       ref_trace);
  List.iter
    (fun width ->
      let results, trace, metrics, _ = run ~width () in
      let tag = Printf.sprintf "@ width %d" width in
      Alcotest.(check (list string)) ("results " ^ tag) ref_results results;
      Alcotest.(check (list string)) ("typed trace " ^ tag) ref_trace trace;
      Alcotest.(check string) ("metrics json " ^ tag) ref_metrics metrics)
    [ 2; 4 ]

(* ---- Engine level: per-branch buffer reuse ----------------------------- *)

let test_branch_buf_reuse () =
  let e2 =
    {|USE continental delta united
UPDATE flight% SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'|}
  in
  let run () =
    let fx = F.make () in
    M.set_domains fx.F.session 2;
    match M.exec fx.F.session e2 with
    | Ok _ -> ()
    | Error m -> Alcotest.fail m
  in
  (* populate the freelist (first run may miss), then measure *)
  run ();
  let h0, _ = Narada.Engine.branch_buf_stats () in
  run ();
  let h1, m1 = Narada.Engine.branch_buf_stats () in
  Alcotest.(check bool)
    (Printf.sprintf "second run reuses branch buffers (hits %d -> %d, misses %d)"
       h0 h1 m1)
    true
    (h1 - h0 >= 3)

let () =
  Alcotest.run "parjoin"
    [
      ( "relation",
        [
          Alcotest.test_case "uniform keys" `Quick test_parjoin_uniform;
          Alcotest.test_case "skewed keys" `Quick test_parjoin_skewed;
          Alcotest.test_case "empty partitions" `Quick
            test_parjoin_empty_partitions;
          Alcotest.test_case "bigint keys" `Quick test_parjoin_bigint_keys;
          Alcotest.test_case "null keys" `Quick test_parjoin_null_keys;
          Alcotest.test_case "empty sides" `Quick test_parjoin_empty_sides;
          Alcotest.test_case "multikey mixed classes" `Quick
            test_parjoin_multikey_mixed;
          Alcotest.test_case "parallel filter" `Quick
            test_parfilter_matches_sequential;
        ] );
      ( "session",
        [
          Alcotest.test_case "width invariance" `Quick
            test_session_width_invariance;
          Alcotest.test_case "row floor gates" `Quick test_session_floor_gates;
          Alcotest.test_case "msession differential" `Quick
            test_msession_differential;
        ] );
      ( "engine",
        [
          Alcotest.test_case "branch buffer reuse" `Quick
            test_branch_buf_reuse;
        ] );
    ]
