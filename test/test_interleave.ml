(* MVCC anomaly scenarios under deterministic interleaving: lost update,
   cross-site reservation races, read-your-snapshot, the
   interleaved-vs-serial differential, and Recovery_log verdict replay
   when a conflict abort lands between 2PC prepare and decision. *)
open Sqlcore
module World = Netsim.World
module D = Narada.Dol_ast
module Engine = Narada.Engine
module Caps = Ldbms.Capabilities
module F = Msql.Fixtures
module M = Msql.Msession
module I = Msql.Interleave
module Metrics = Msql.Metrics
module Multitable = Msql.Multitable

let status =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (D.status_to_string s))
    (fun a b -> a = b)

let value = Alcotest.testable Value.pp Value.equal
let contains = Astring_contains.contains

(* ---- engine-level fixture: two airlines, one flights row each --------- *)

let flight_schema =
  [ Schema.column "flnu" Ty.Int; Schema.column ~width:20 "source" Ty.Str;
    Schema.column "rate" Ty.Float ]

let setup () =
  let world = World.create () in
  let dir = Narada.Directory.create () in
  let mk name site =
    World.add_site world (Netsim.Site.make site);
    let db = Ldbms.Database.create name in
    Ldbms.Database.load db ~name:"flights" flight_schema
      [ [| Value.Int 1; Value.Str "Houston"; Value.Float 100.0 |] ];
    Narada.Directory.register dir
      (Narada.Service.make ~site ~caps:Caps.ingres_like db);
    db
  in
  let a = mk "aero" "site1" in
  let b = mk "bravo" "site2" in
  (world, dir, a, b)

let rate db n =
  let tbl = Ldbms.Database.find_table db "flights" in
  match
    List.find_opt
      (fun r -> Value.equal r.(0) (Value.Int n))
      (Ldbms.Table.rows tbl)
  with
  | Some r -> r.(2)
  | None -> Value.Null

let parse text =
  match Narada.Dol_parser.parse text with
  | p -> p
  | exception Narada.Dol_parser.Error (m, _, _) -> Alcotest.fail m

let finish_exn sp =
  match Engine.finish sp with
  | Ok o -> o
  | Error m -> Alcotest.fail ("engine error: " ^ m)

(* ---- read-your-snapshot ------------------------------------------------ *)

let writer_prog = {|
DOLBEGIN
  OPEN aero AT site1 AS wa;
  TASK WT NOCOMMIT FOR wa {
    UPDATE flights SET rate = 200.0 WHERE flnu = 1;
    SELECT rate FROM flights WHERE flnu = 1
  } ENDTASK;
  COMMIT WT;
  DOLSTATUS = 0;
  CLOSE wa;
DOLEND
|}

let reader_prog = {|
DOLBEGIN
  OPEN aero AT site1 AS ra;
  TASK RT FOR ra { SELECT rate FROM flights WHERE flnu = 1 } ENDTASK;
  DOLSTATUS = 0;
  CLOSE ra;
DOLEND
|}

let single_cell o task =
  match Engine.result_of o task with
  | Some rel -> (
      match Relation.rows rel with
      | [ [| v |] ] -> v
      | _ -> Alcotest.fail ("expected one cell from " ^ task))
  | None -> Alcotest.fail ("no result for " ^ task)

(* a transaction reads its own staged intent; everyone else reads the
   snapshot that predates it until the commit publishes a new version *)
let test_read_your_snapshot () =
  let world, dir, a, _b = setup () in
  let sw = Engine.start ~directory:dir ~world (parse writer_prog) in
  ignore (Engine.step sw);
  (* WT prepared: the 200.0 intent is staged but uncommitted *)
  ignore (Engine.step sw);
  let sr = Engine.start ~directory:dir ~world (parse reader_prog) in
  let o_reader = finish_exn sr in
  let o_writer = finish_exn sw in
  Alcotest.check status "writer committed" D.C (Engine.status_of o_writer "WT");
  Alcotest.check status "reader committed" D.C (Engine.status_of o_reader "RT");
  Alcotest.check value "writer reads its own intent" (Value.Float 200.0)
    (single_cell o_writer "WT");
  Alcotest.check value "reader's snapshot predates the intent"
    (Value.Float 100.0)
    (single_cell o_reader "RT");
  Alcotest.check value "the commit published the new version"
    (Value.Float 200.0) (rate a 1)

(* ---- verdict replay with a conflict abort in the 2PC window ----------- *)

let vital_pair = {|
DOLBEGIN
  OPEN aero AT site1 AS aa;
  OPEN bravo AT site2 AS bb;
  PARBEGIN
    TASK T1 NOCOMMIT FOR aa { UPDATE flights SET rate = rate + 10 } ENDTASK;
    TASK T2 NOCOMMIT FOR bb { UPDATE flights SET rate = rate + 10 } ENDTASK;
  PAREND;
  IF (T1=P) AND (T2=P) THEN
  BEGIN COMMIT T1, T2; DOLSTATUS = 0; END;
  ELSE
  BEGIN ABORT T1, T2; DOLSTATUS = 1; END;
  CLOSE aa bb;
DOLEND
|}

let rival_prog = {|
DOLBEGIN
  OPEN bravo AT site2 AS rb;
  TASK RV NOCOMMIT FOR rb { UPDATE flights SET rate = rate + 5 } ENDTASK;
  COMMIT RV;
  DOLSTATUS = 0;
  CLOSE rb;
DOLEND
|}

(* a rival conflicts against a prepared participant between prepare and
   the coordinator's decision, and the decision itself is cut off by an
   outage: the conflict must abort cleanly (a prepared participant never
   loses its reservation), and recovery must replay the logged commit
   verdict exactly once *)
let test_replay_verdict_after_conflict_in_window () =
  let world, dir, a, b = setup () in
  let sx = Engine.start ~directory:dir ~world (parse vital_pair) in
  ignore (Engine.step sx);
  ignore (Engine.step sx);
  (* the PARBEGIN block: both members prepare and reserve their tables *)
  ignore (Engine.step sx);
  let sy = Engine.start ~directory:dir ~world (parse rival_prog) in
  ignore (Engine.step sy);
  ignore (Engine.step sy);
  let oy = finish_exn sy in
  Alcotest.check status "rival aborted in the window" D.A
    (Engine.status_of oy "RV");
  Alcotest.(check bool) "conflict was retried as transient" true
    (oy.Engine.retries > 0);
  (* crash bravo's site across the decision: T2's commit cannot land and
     stays in doubt with the verdict logged *)
  World.set_down_until world "site2" (World.now_ms world +. 100.0);
  let ox = finish_exn sx in
  Alcotest.check status "t1 committed" D.C (Engine.status_of ox "T1");
  Alcotest.check status "t2 recovered to C" D.C (Engine.status_of ox "T2");
  Alcotest.(check int) "verdict replayed once" 1 ox.Engine.recovered;
  Alcotest.(check int) "nothing left in doubt" 0 ox.Engine.in_doubt;
  Alcotest.(check bool) "no split" false ox.Engine.vital_split;
  (* idempotence: the replayed commit applies the staged intent exactly
     once, and the aborted rival's +5 not at all *)
  Alcotest.check value "a updated once" (Value.Float 110.0) (rate a 1);
  Alcotest.check value "b updated once" (Value.Float 110.0) (rate b 1);
  (* finish is idempotent at the engine level: the cached outcome comes
     back unchanged *)
  let ox2 = finish_exn sx in
  Alcotest.(check bool) "finish returns the cached outcome" true (ox == ox2)

(* ---- msession-level helpers ------------------------------------------- *)

let second_session fx services =
  let s = M.create ~world:fx.F.world ~directory:fx.F.directory () in
  List.iter
    (fun svc ->
      (match M.incorporate_auto s ~service:svc with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      match M.import_all s ~service:svc with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
    services;
  s

(* number of steps that carry a participant through its task block
   (inclusive): DOL statements up to and including the Parallel — or the
   bare Task, since the dataflow scheduler unwraps singleton waves *)
let steps_to_block t sql =
  match M.translate t sql with
  | Error m -> Alcotest.fail ("translate: " ^ m)
  | Ok prog ->
      let has_task ms = List.exists (function D.Task _ -> true | _ -> false) ms in
      let rec idx k = function
        | [] -> Alcotest.fail "plan has no parallel task block"
        | D.Parallel ms :: _ when has_task ms -> k + 1
        | D.Task _ :: _ -> k + 1
        | _ :: rest -> idx (k + 1) rest
      in
      idx 0 prog

let repeat n x = List.init n (fun _ -> x)

let result_exn outcome label =
  match I.result_of outcome label with
  | Ok r -> r
  | Error m -> Alcotest.fail (label ^ ": " ^ m)

let cell_count fx ~db ~table v =
  List.fold_left
    (fun acc row ->
      Array.fold_left (fun a c -> if Value.equal c v then a + 1 else a) acc row)
    0
    (Relation.rows (F.scan fx ~db ~table))

(* ---- lost update ------------------------------------------------------- *)

(* two sessions double/bump the same flight; the interleaving steps the
   loser's task block while the winner holds its prepared reservation, so
   first-committer-wins turns the lost update into a clean abort *)
let test_lost_update_aborts_loser () =
  let fx = F.make () in
  let s2 = second_session fx [ "continental" ] in
  let w_sql =
    "USE continental VITAL UPDATE flights SET rate = rate * 2 WHERE flnu = 101"
  in
  let l_sql =
    "USE continental VITAL UPDATE flights SET rate = rate + 7 WHERE flnu = 101"
  in
  let n = steps_to_block fx.F.session w_sql in
  let script = repeat n "winner" @ repeat n "loser" in
  let outcome =
    I.run
      ~schedule:(I.Script script)
      [
        { I.label = "winner"; session = fx.F.session; sql = w_sql };
        { I.label = "loser"; session = s2; sql = l_sql };
      ]
  in
  (match result_exn outcome "winner" with
  | M.Update_report { outcome = M.Success; _ } -> ()
  | r -> Alcotest.fail ("winner: " ^ M.result_to_string r));
  (match result_exn outcome "loser" with
  | M.Update_report { outcome = M.Aborted; _ } -> ()
  | r -> Alcotest.fail ("loser: " ^ M.result_to_string r));
  (* the rate was doubled exactly once: never 107 (lost update), never
     207/214 (double apply) *)
  let flights = F.scan fx ~db:"continental" ~table:"flights" in
  let row =
    List.find
      (fun r -> Value.equal r.(0) (Value.Int 101))
      (Relation.rows flights)
  in
  Alcotest.check value "rate doubled exactly once" (Value.Float 200.0) row.(6);
  let m2 = M.metrics s2 in
  Alcotest.(check bool) "loser counted ww conflicts" true
    (m2.Metrics.ww_conflicts > 0);
  Alcotest.(check bool) "conflict retries counted" true
    (m2.Metrics.conflict_retries > 0);
  Alcotest.(check bool) "conflict abort counted" true
    (m2.Metrics.conflict_aborts >= 1);
  Alcotest.(check bool) "snapshots counted" true (m2.Metrics.snapshots > 0);
  Alcotest.(check bool) "metrics json has the mvcc section" true
    (contains (M.metrics_json s2) "\"mvcc\"")

(* ---- cross-site reservation race -------------------------------------- *)

let seat_mtx name =
  Printf.sprintf
    {|
BEGIN MULTITRANSACTION
  USE continental delta
  LET fltab.snu.sstat.clname BE
    f838.seatnu.seatstatus.clientname
    f747.snu.sstat.passname
  UPDATE fltab
  SET sstat = 'TAKEN', clname = '%s'
  WHERE snu = ( SELECT MIN(snu) FROM fltab WHERE sstat = 'FREE');
COMMIT
  continental AND delta
END MULTITRANSACTION
|}
    name

(* both multitransactions want the lowest free seat on both airlines
   atomically (COMMIT a AND b): the interleaved outcome must be
   serial-equivalent — one client holds both seats, the other is fully
   undone on both sites, never a mixed booking *)
let test_cross_site_reservation_race () =
  let fx = F.make () in
  let s2 = second_session fx [ "continental"; "delta" ] in
  let sql_a = seat_mtx "alice" and sql_b = seat_mtx "bob" in
  let n = steps_to_block fx.F.session sql_a in
  let script = repeat n "alice" @ repeat n "bob" in
  let outcome =
    I.run
      ~schedule:(I.Script script)
      [
        { I.label = "alice"; session = fx.F.session; sql = sql_a };
        { I.label = "bob"; session = s2; sql = sql_b };
      ]
  in
  (match result_exn outcome "alice" with
  | M.Mtx_report { chosen = Some 0; incorrect = false; _ } -> ()
  | r -> Alcotest.fail ("alice: " ^ M.result_to_string r));
  (match result_exn outcome "bob" with
  | M.Mtx_report { chosen = None; incorrect = false; _ } -> ()
  | r -> Alcotest.fail ("bob: " ^ M.result_to_string r));
  let count = cell_count fx in
  Alcotest.(check int) "alice holds the continental seat" 1
    (count ~db:"continental" ~table:"f838" (Value.Str "alice"));
  Alcotest.(check int) "alice holds the delta seat" 1
    (count ~db:"delta" ~table:"f747" (Value.Str "alice"));
  Alcotest.(check int) "bob holds nothing on continental" 0
    (count ~db:"continental" ~table:"f838" (Value.Str "bob"));
  Alcotest.(check int) "bob holds nothing on delta" 0
    (count ~db:"delta" ~table:"f747" (Value.Str "bob"));
  (* exactly one seat was newly taken per airline *)
  Alcotest.(check int) "one free seat left on continental" 1
    (count ~db:"continental" ~table:"f838" (Value.Str "FREE"));
  Alcotest.(check int) "one free seat left on delta" 1
    (count ~db:"delta" ~table:"f747" (Value.Str "FREE"))

(* ---- differential: interleaved independent sessions == serial --------- *)

let reader_sql = "USE continental SELECT flnu, rate FROM flights WHERE day = 'mon'"
let renter_sql =
  "USE avis VITAL UPDATE cars SET rate = rate + 1.0 WHERE carst = 'available'"

let diff_participants fx s2 =
  [
    { I.label = "reader"; session = fx.F.session; sql = reader_sql };
    { I.label = "renter"; session = s2; sql = renter_sql };
  ]

let mt_string = function
  | M.Multitable mt -> Multitable.to_string mt
  | r -> Alcotest.fail ("expected a multitable, got " ^ M.result_to_string r)

let upd_summary = function
  | M.Update_report { outcome; dolstatus; _ } ->
      (M.update_outcome_to_string outcome, dolstatus)
  | r -> Alcotest.fail ("expected an update report, got " ^ M.result_to_string r)

let run_serial () =
  let fx = F.make () in
  let s2 = second_session fx [ "avis" ] in
  let exec p =
    match M.exec p.I.session p.I.sql with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  let rs = List.map exec (diff_participants fx s2) in
  (fx, List.nth rs 0, List.nth rs 1)

let run_interleaved schedule =
  let fx = F.make () in
  let s2 = second_session fx [ "avis" ] in
  let outcome = I.run ~schedule (diff_participants fx s2) in
  (fx, result_exn outcome "reader", result_exn outcome "renter")

let check_against_serial name schedule =
  let fx_s, reader_s, renter_s = run_serial () in
  let fx_i, reader_i, renter_i = run_interleaved schedule in
  Alcotest.(check string)
    (name ^ ": retrieval is byte-identical to serial")
    (mt_string reader_s) (mt_string reader_i);
  Alcotest.(check (pair string int))
    (name ^ ": update outcome matches serial")
    (upd_summary renter_s) (upd_summary renter_i);
  Alcotest.(check bool)
    (name ^ ": avis rows match serial")
    true
    (Relation.equal
       (F.scan fx_s ~db:"avis" ~table:"cars")
       (F.scan fx_i ~db:"avis" ~table:"cars"))

let test_differential_round_robin () =
  check_against_serial "round-robin" I.Round_robin

let test_differential_seeded () =
  check_against_serial "seeded(7)" (I.Seeded 7);
  check_against_serial "seeded(23)" (I.Seeded 23)

(* ---- harness edges ----------------------------------------------------- *)

let test_script_unknown_label () =
  let fx = F.make () in
  let p =
    {
      I.label = "only";
      session = fx.F.session;
      sql = "USE continental SELECT flnu FROM flights";
    }
  in
  match I.run ~schedule:(I.Script [ "nope" ]) [ p ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for an unknown label"

let test_prepare_rejects_non_steppable () =
  let fx = F.make () in
  (match
     M.prepare_text fx.F.session
       "EXPLAIN MULTIPLE USE continental SELECT flnu FROM flights"
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "EXPLAIN must not be steppable");
  match M.prepare_text fx.F.session "IMPORT DATABASE x FROM SERVICE y" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dictionary statements must not be steppable"

let () =
  Alcotest.run "interleave"
    [
      ( "snapshot isolation",
        [
          Alcotest.test_case "read-your-snapshot" `Quick test_read_your_snapshot;
          Alcotest.test_case "verdict replay after conflict in 2PC window"
            `Quick test_replay_verdict_after_conflict_in_window;
        ] );
      ( "anomalies",
        [
          Alcotest.test_case "lost update aborts the loser" `Quick
            test_lost_update_aborts_loser;
          Alcotest.test_case "cross-site reservation race" `Quick
            test_cross_site_reservation_race;
        ] );
      ( "differential",
        [
          Alcotest.test_case "round-robin == serial" `Quick
            test_differential_round_robin;
          Alcotest.test_case "seeded == serial" `Quick test_differential_seeded;
        ] );
      ( "harness",
        [
          Alcotest.test_case "unknown script label" `Quick
            test_script_unknown_label;
          Alcotest.test_case "non-steppable statements rejected" `Quick
            test_prepare_rejects_non_steppable;
        ] );
    ]
