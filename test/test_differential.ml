(* Differential testing of the join machinery: the decomposed global
   pipeline (with and without semijoin reduction) against the same query
   run on a single merged local database, and the hash-join planner
   against the naive filtered product — over a matrix of selectivities
   and data seeds. Any divergence is a planner or reducer bug, since all
   paths must produce the same multiset of rows. *)
open Sqlcore
module M = Msql.Msession
module Caps = Ldbms.Capabilities

let col = Schema.column
let s x = Value.Str x
let i x = Value.Int x
let f x = Value.Float x

let parts_schema =
  [ col "pid" Ty.Int; col ~width:16 "pname" Ty.Str; col "price" Ty.Float ]

let sales_schema =
  [ col "sid" Ty.Int; col "part_id" Ty.Int; col "qty" Ty.Int ]

(* deterministic synthetic data: prices uniform in [0,100), sale keys
   drawn from twice the pid range so roughly half the sales dangle *)
let gen_data ~seed ~n_parts ~n_sales =
  let rng = Random.State.make [| seed |] in
  let parts =
    List.init n_parts (fun k ->
        [| i k; s (Printf.sprintf "part%d" k); f (Random.State.float rng 100.0) |])
  in
  let sales =
    List.init n_sales (fun k ->
        [| i k; i (Random.State.int rng (2 * n_parts));
           i (1 + Random.State.int rng 9) |])
  in
  (parts, sales)

(* two-site federation: market(sales) and store(parts), fully imported so
   the GDD has the cardinalities the semijoin cost gate reads *)
let make_fed ~parts ~sales =
  let world = Netsim.World.create () in
  let directory = Narada.Directory.create () in
  let session = M.create ~world ~directory () in
  List.iter
    (fun (name, site, tname, schema, rows) ->
      Netsim.World.add_site world (Netsim.Site.make site);
      let db = Ldbms.Database.create name in
      Ldbms.Database.load db ~name:tname schema rows;
      Narada.Directory.register directory
        (Narada.Service.make ~site ~caps:Caps.ingres_like db);
      (match M.incorporate_auto session ~service:name with
      | Ok () -> ()
      | Error m -> failwith m);
      match M.import_all session ~service:name with
      | Ok () -> ()
      | Error m -> failwith m)
    [
      ("market", "msite", "sales", sales_schema, sales);
      ("store", "ssite", "parts", parts_schema, parts);
    ];
  (session, world)

let merged_session ~parts ~sales =
  let db = Ldbms.Database.create "merged" in
  Ldbms.Database.load db ~name:"parts" parts_schema parts;
  Ldbms.Database.load db ~name:"sales" sales_schema sales;
  Ldbms.Session.connect db Caps.ingres_like

let local_rows session sql =
  match Ldbms.Session.exec_sql session sql with
  | Ok (Ldbms.Session.Rows rel) -> rel
  | Ok _ -> Alcotest.fail "local query did not produce rows"
  | Error m -> Alcotest.fail ("local query: " ^ m)

let global_rows session sql =
  match M.exec session sql with
  | Ok (M.Multitable mt) -> Option.get (Msql.Multitable.flatten mt)
  | Ok r -> Alcotest.fail ("expected rows, got " ^ M.result_to_string r)
  | Error m -> Alcotest.fail ("global query: " ^ m)

(* ---- decomposed pipeline vs merged local database ------------------- *)

let global_query ~cutoff ~extra =
  Printf.sprintf
    "USE market store SELECT s.sid, p.pname, s.qty FROM market.sales s, \
     store.parts p WHERE s.part_id = p.pid AND p.price < %f%s"
    cutoff extra

let local_query ~cutoff ~extra =
  Printf.sprintf
    "SELECT s.sid, p.pname, s.qty FROM sales s, parts p WHERE s.part_id = \
     p.pid AND p.price < %f%s"
    cutoff extra

let check_case ~seed ~cutoff ~extra ~semijoin =
  let parts, sales = gen_data ~seed ~n_parts:60 ~n_sales:90 in
  let session, _world = make_fed ~parts ~sales in
  M.set_semijoin session semijoin;
  let got = global_rows session (global_query ~cutoff ~extra) in
  let want =
    local_rows (merged_session ~parts ~sales) (local_query ~cutoff ~extra)
  in
  Alcotest.(check bool)
    (Printf.sprintf "seed=%d cutoff=%.0f extra=%S semijoin=%b" seed cutoff
       extra semijoin)
    true
    (Relation.equal_unordered got want)

let test_matrix () =
  List.iter
    (fun seed ->
      List.iter
        (fun cutoff ->
          List.iter
            (fun semijoin ->
              check_case ~seed ~cutoff ~extra:"" ~semijoin;
              (* a coordinator-local conjunct feeds the probe's WHERE *)
              check_case ~seed ~cutoff ~extra:" AND s.qty > 5" ~semijoin)
            [ true; false ])
        [ 10.0; 50.0; 90.0 ])
    [ 1; 2; 3 ]

(* empty key set: no sale references any part, so the reduced subquery is
   a contradiction and the temporary arrives empty — result still [] *)
let test_empty_keyset () =
  let parts = [ [| i 1; s "a"; f 5.0 |]; [| i 2; s "b"; f 6.0 |] ] in
  let sales = [ [| i 1; i 99; i 3 |] ] in
  let session, _ = make_fed ~parts ~sales in
  M.set_semijoin session true;
  let got = global_rows session (global_query ~cutoff:100.0 ~extra:"") in
  Alcotest.(check int) "no rows" 0 (Relation.cardinality got)

(* at a selective probe, the reduction must ship strictly fewer bytes
   than the unreduced decomposition even after paying for the key set *)
let test_semijoin_saves_bytes () =
  let parts, sales = gen_data ~seed:7 ~n_parts:200 ~n_sales:30 in
  let run semijoin =
    let session, world = make_fed ~parts ~sales in
    M.set_semijoin session semijoin;
    Netsim.World.reset_stats world;
    let rel = global_rows session (global_query ~cutoff:90.0 ~extra:"") in
    (rel, (Netsim.World.stats world).Netsim.World.bytes_moved)
  in
  let reduced, bytes_on = run true in
  let full, bytes_off = run false in
  Alcotest.(check bool) "same rows" true (Relation.equal_unordered reduced full);
  Alcotest.(check bool)
    (Printf.sprintf "fewer bytes (%d < %d)" bytes_on bytes_off)
    true (bytes_on < bytes_off)

(* ---- session performance layer --------------------------------------- *)

let enable_all session =
  M.set_pooling session true;
  M.set_plan_cache session true;
  M.set_result_cache session true

(* the global-vs-merged differential again with pooling, plan cache and
   result cache all on, every query run twice so the repeat is served by
   the caches — rows must be identical to the merged database either way *)
let test_matrix_all_layers () =
  List.iter
    (fun seed ->
      let parts, sales = gen_data ~seed ~n_parts:60 ~n_sales:90 in
      let session, _world = make_fed ~parts ~sales in
      enable_all session;
      let merged = merged_session ~parts ~sales in
      List.iter
        (fun cutoff ->
          let want = local_rows merged (local_query ~cutoff ~extra:"") in
          let first = global_rows session (global_query ~cutoff ~extra:"") in
          let again = global_rows session (global_query ~cutoff ~extra:"") in
          Alcotest.(check bool)
            (Printf.sprintf "cold run (seed=%d cutoff=%.0f)" seed cutoff)
            true
            (Relation.equal_unordered first want);
          Alcotest.(check bool)
            (Printf.sprintf "cached run (seed=%d cutoff=%.0f)" seed cutoff)
            true
            (Relation.equal_unordered again want))
        [ 10.0; 50.0; 90.0 ];
      let st = M.cache_stats session in
      Alcotest.(check bool) "plans reused" true (st.M.plan_hits > 0);
      Alcotest.(check bool) "shipped results reused" true (st.M.result_hits > 0);
      Alcotest.(check bool) "connections reused" true (st.M.pool_hits > 0))
    [ 1; 2; 3 ]

(* a re-IMPORT changes what the planner knows (schema, cardinality), so a
   memoized plan keyed on the old dictionary version must not be served *)
let test_plan_cache_misses_after_import () =
  let parts, sales = gen_data ~seed:5 ~n_parts:30 ~n_sales:40 in
  let session, _ = make_fed ~parts ~sales in
  M.set_plan_cache session true;
  let q = global_query ~cutoff:50.0 ~extra:"" in
  ignore (global_rows session q);
  ignore (global_rows session q);
  let st = M.cache_stats session in
  Alcotest.(check int) "repeat is a hit" 1 st.M.plan_hits;
  (* grow the store database behind the federation's back, then re-import:
     the recorded cardinality changes and the version epoch moves *)
  let store =
    (Option.get (Narada.Directory.find_opt (M.directory session) "store"))
      .Narada.Service.database
  in
  let store_sess = Ldbms.Session.connect store Caps.ingres_like in
  (match
     Ldbms.Session.exec_sql store_sess
       "INSERT INTO parts VALUES (999, 'extra', 1.0)"
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (match Ldbms.Session.commit store_sess with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match M.import_all session ~service:"store" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  ignore (global_rows session q);
  let st' = M.cache_stats session in
  Alcotest.(check int) "import forces a re-plan" st.M.plan_hits st'.M.plan_hits;
  Alcotest.(check bool) "miss counted" true (st'.M.plan_misses > st.M.plan_misses)

(* a committed update against the source database of a cached shipped
   result must evict it; the re-shipped rows reflect the new data *)
let test_result_cache_misses_after_update () =
  let parts, sales = gen_data ~seed:6 ~n_parts:60 ~n_sales:90 in
  let session, world = make_fed ~parts ~sales in
  M.set_result_cache session true;
  let q = global_query ~cutoff:50.0 ~extra:"" in
  ignore (global_rows session q);
  Netsim.World.reset_stats world;
  ignore (global_rows session q);
  let st = M.cache_stats session in
  Alcotest.(check bool) "repeat served from cache" true (st.M.result_hits > 0);
  (* every part now costs nothing, so the < 50.0 probe matches them all *)
  (match M.exec session "USE store UPDATE store.parts SET price = 0.0" with
  | Ok (M.Update_report { outcome = M.Success; _ }) -> ()
  | Ok r -> Alcotest.fail (M.result_to_string r)
  | Error m -> Alcotest.fail m);
  let fresh = global_rows session q in
  let st' = M.cache_stats session in
  Alcotest.(check int) "update evicted the entry" st.M.result_hits
    st'.M.result_hits;
  let merged = merged_session ~parts ~sales in
  (match
     Ldbms.Session.exec_sql merged "UPDATE parts SET price = 0.0"
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (match Ldbms.Session.commit merged with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let want = local_rows merged (local_query ~cutoff:50.0 ~extra:"") in
  Alcotest.(check bool) "re-shipped rows reflect the update" true
    (Relation.equal_unordered fresh want)

(* ---- hash-join planner vs naive product ----------------------------- *)

let rows_with_planner session enabled sql =
  Ldbms.Exec.set_join_planner enabled;
  Fun.protect
    ~finally:(fun () -> Ldbms.Exec.set_join_planner true)
    (fun () -> Relation.rows (local_rows session sql))

(* the planner must reproduce the filtered product's exact multiset of
   rows — duplicates included. Row order is not part of the contract
   (ORDER BY is), and the greedy join ordering does permute it. *)
let check_planner_identical session sql =
  let fast = rows_with_planner session true sql in
  let slow = rows_with_planner session false sql in
  Alcotest.(check int) (sql ^ ": cardinality") (List.length slow)
    (List.length fast);
  let sort = List.sort Row.compare in
  List.iter2
    (fun a b -> Alcotest.(check bool) (sql ^ ": rows") true (Row.equal a b))
    (sort slow) (sort fast)

let planner_queries =
  [
    local_query ~cutoff:50.0 ~extra:"";
    local_query ~cutoff:90.0 ~extra:" AND s.qty > 5";
    (* three-way join: two equi-edges chain all leaves together *)
    "SELECT p.pid, q.pname, s.qty FROM sales s, parts p, parts q WHERE \
     s.part_id = p.pid AND p.pid = q.pid AND q.price < 50.0";
    (* join on a float column against an int column: numeric classes mix *)
    "SELECT s.sid FROM sales s, parts p WHERE s.part_id = p.price";
    (* no equi-conjunct at all: planner must fall back to the product *)
    "SELECT s.sid, p.pid FROM sales s, parts p WHERE s.part_id < p.pid";
  ]

let test_planner_matches_product () =
  List.iter
    (fun seed ->
      let parts, sales = gen_data ~seed ~n_parts:40 ~n_sales:60 in
      let session = merged_session ~parts ~sales in
      List.iter (check_planner_identical session) planner_queries)
    [ 11; 12; 13 ]

(* keys above 2^53: adjacent ints are indistinguishable once routed
   through a float, so the hash join's buckets must be built from exact
   keys or it joins rows the filtered product rejects *)
let test_planner_bigint_keys () =
  let big = 9007199254740992 (* 2^53 *) in
  let parts =
    [ [| i big; s "even"; f 1.0 |]; [| i (big + 1); s "odd"; f 2.0 |] ]
  in
  let sales =
    [ [| i 1; i big; i 3 |]; [| i 2; i (big + 1); i 4 |];
      [| i 3; i (big + 2); i 5 |] ]
  in
  let session = merged_session ~parts ~sales in
  check_planner_identical session
    "SELECT s.sid, p.pname FROM sales s, parts p WHERE s.part_id = p.pid"

(* same matrix with a declared index on the join column, so the planner
   takes the index-nested-loop path instead of building a hash table *)
let test_inl_matches_product () =
  let parts, sales = gen_data ~seed:21 ~n_parts:40 ~n_sales:60 in
  let session = merged_session ~parts ~sales in
  (match Ldbms.Session.exec_sql session "CREATE INDEX by_pid ON parts (pid)" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  List.iter (check_planner_identical session) planner_queries

let () =
  Alcotest.run "differential"
    [
      ( "global vs merged",
        [
          Alcotest.test_case "matrix" `Quick test_matrix;
          Alcotest.test_case "empty key set" `Quick test_empty_keyset;
          Alcotest.test_case "semijoin saves bytes" `Quick
            test_semijoin_saves_bytes;
        ] );
      ( "session caches",
        [
          Alcotest.test_case "matrix, all layers on" `Quick
            test_matrix_all_layers;
          Alcotest.test_case "plan cache misses after import" `Quick
            test_plan_cache_misses_after_import;
          Alcotest.test_case "result cache misses after update" `Quick
            test_result_cache_misses_after_update;
        ] );
      ( "planner vs product",
        [
          Alcotest.test_case "hash join" `Quick test_planner_matches_product;
          Alcotest.test_case "keys above 2^53" `Quick test_planner_bigint_keys;
          Alcotest.test_case "index nested loop" `Quick test_inl_matches_product;
        ] );
    ]
