(* Domain-pool execution. Three layers of assurance:

   - Dpool unit behavior: every job of every batch runs, batches are
     independent, the caller is itself an execution lane, and a 2-wide
     pool really does run two jobs concurrently (a rendezvous that can
     only complete if the jobs overlap in time).
   - The parallel second phase of 2PC in virtual time: committing a
     3-site vital update costs the slowest participant's round trip, not
     the sum of the three (E3's commit phase = max of branches).
   - The determinism differential: running the paper examples and the
     chaos/failure fixtures with 2 and 4 domains must produce
     byte-identical outcomes, typed trace streams, metrics JSON and
     per-site ledgers compared to the sequential run. *)
open Sqlcore
module F = Msql.Fixtures
module M = Msql.Msession
module World = Netsim.World
module Engine = Narada.Engine
module Dpool = Narada.Dpool
module Trace = Narada.Trace
module Caps = Ldbms.Capabilities

let col = Schema.column
let i x = Value.Int x
let f x = Value.Float x

(* ---- Dpool ------------------------------------------------------------ *)

let test_dpool_runs_everything () =
  let pool = Dpool.create ~domains:4 in
  Fun.protect ~finally:(fun () -> Dpool.shutdown pool) @@ fun () ->
  Alcotest.(check int) "width counts the caller" 4 (Dpool.size pool);
  let m = Mutex.create () in
  let hits = ref 0 in
  let job () =
    Mutex.lock m;
    incr hits;
    Mutex.unlock m
  in
  (* more jobs than lanes: the queue drains completely *)
  Dpool.run_all pool (List.init 37 (fun _ -> job));
  Alcotest.(check int) "all jobs ran" 37 !hits;
  (* completion is per batch, so the pool is immediately reusable *)
  Dpool.run_all pool (List.init 5 (fun _ -> job));
  Alcotest.(check int) "second batch ran" 42 !hits

let test_dpool_width_one_is_the_caller () =
  let pool = Dpool.create ~domains:1 in
  Fun.protect ~finally:(fun () -> Dpool.shutdown pool) @@ fun () ->
  let caller = Domain.self () in
  let seen = ref [] in
  Dpool.run_all pool (List.init 3 (fun k () -> seen := (k, Domain.self ()) :: !seen));
  Alcotest.(check int) "all ran" 3 (List.length !seen);
  List.iter
    (fun (_, d) ->
      Alcotest.(check bool) "on the calling domain" true (d = caller))
    !seen

(* two jobs that each wait for the other to start: completes only if the
   pool really runs them at the same time on two domains *)
let test_dpool_jobs_overlap () =
  let pool = Dpool.create ~domains:2 in
  Fun.protect ~finally:(fun () -> Dpool.shutdown pool) @@ fun () ->
  let a = Atomic.make false and b = Atomic.make false in
  (* Sys.time is processor time, which a spinning domain consumes, so the
     loop is bounded even if the jobs were (wrongly) serialized *)
  let deadline = Sys.time () +. 10.0 in
  let wait_for flag =
    while (not (Atomic.get flag)) && Sys.time () < deadline do
      Domain.cpu_relax ()
    done;
    Atomic.get flag
  in
  let met = Atomic.make 0 in
  Dpool.run_all pool
    [
      (fun () ->
        Atomic.set a true;
        if wait_for b then Atomic.incr met);
      (fun () ->
        Atomic.set b true;
        if wait_for a then Atomic.incr met);
    ];
  Alcotest.(check int) "both jobs saw each other running" 2 (Atomic.get met)

let test_dpool_shared_memoized () =
  let p1 = Dpool.shared ~domains:3 in
  let p2 = Dpool.shared ~domains:3 in
  let p3 = Dpool.shared ~domains:2 in
  Alcotest.(check bool) "same width shares one pool" true (p1 == p2);
  Alcotest.(check bool) "different width is a different pool" true (p1 != p3)

(* ---- E3 commit phase: max of branches, not sum ------------------------ *)

(* three 2PC sites with distinct pure latencies and zero per-byte cost,
   so every message costs exactly the remote site's latency *)
let graded_world () =
  let world = World.create () in
  let dir = Narada.Directory.create () in
  List.iter
    (fun (svc, site, lat) ->
      World.add_site world
        (Netsim.Site.make ~latency_ms:lat ~per_byte_ms:0.0 site);
      let db = Ldbms.Database.create svc in
      Ldbms.Database.load db ~name:"flights"
        [ col "flnu" Ty.Int; col "rate" Ty.Float ]
        [ [| i 1; f 100.0 |] ];
      Narada.Directory.register dir
        (Narada.Service.make ~site ~caps:Caps.ingres_like db))
    [ ("alpha", "fast", 10.0); ("beta", "mid", 20.0); ("gamma", "slow", 40.0) ];
  (world, dir)

let e3_shape_program =
  {|
DOLBEGIN
  OPEN alpha AT fast AS c1;
  OPEN beta AT mid AS c2;
  OPEN gamma AT slow AS c3;
  PARBEGIN
    TASK T1 NOCOMMIT FOR c1 { UPDATE flights SET rate = rate * 1.1 } ENDTASK;
    TASK T2 NOCOMMIT FOR c2 { UPDATE flights SET rate = rate * 1.1 } ENDTASK;
    TASK T3 NOCOMMIT FOR c3 { UPDATE flights SET rate = rate * 1.1 } ENDTASK;
  PAREND;
  IF (T1=P) AND (T2=P) AND (T3=P) THEN
  BEGIN COMMIT T1, T2, T3; DOLSTATUS = 0; END;
  CLOSE c1 c2 c3;
DOLEND
|}

let commit_phase_ms ?dpool () =
  let world, dir = graded_world () in
  let events = ref [] in
  (match
     Engine.run_text ?dpool
       ~on_trace:(fun e -> events := e :: !events)
       ~directory:dir ~world e3_shape_program
   with
  | Ok o -> Alcotest.(check int) "committed" 0 o.Engine.dolstatus
  | Error m -> Alcotest.fail m);
  let events = List.rev !events in
  let decision_at =
    match
      List.find_opt
        (fun e ->
          match e.Trace.kind with
          | Trace.Decision { verdict = Trace.Commit; _ } -> true
          | _ -> false)
        events
    with
    | Some e -> e.Trace.at_ms
    | None -> Alcotest.fail "no commit decision event"
  in
  let last_c =
    List.fold_left
      (fun acc e ->
        match e.Trace.kind with
        | Trace.Status { status = Narada.Dol_ast.C; _ } ->
            max acc e.Trace.at_ms
        | _ -> acc)
      decision_at events
  in
  last_c -. decision_at

(* each commit verb is a round trip of 2 x latency; run in parallel the
   phase costs the slowest site's 80 ms, not the serial 140 ms *)
let test_commit_phase_is_max_of_branches () =
  let phase = commit_phase_ms () in
  Alcotest.(check (float 1e-6)) "phase = slowest round trip" 80.0 phase;
  Alcotest.(check bool) "not the serial sum" true (phase < 140.0)

let test_commit_phase_same_under_domains () =
  let seq = commit_phase_ms () in
  let dom = commit_phase_ms ~dpool:(Dpool.shared ~domains:4) () in
  Alcotest.(check (float 1e-9)) "identical virtual phase" seq dom

(* ---- determinism differential ----------------------------------------- *)

(* everything observable about a run, rendered to strings *)
type transcript = {
  tr_results : string list;
  tr_trace : string list;
  tr_metrics : string;
  tr_ledger : string;
  tr_clock : float;
}

let ledger world =
  String.concat "\n"
    (List.map
       (fun (name, st) ->
         Printf.sprintf "%s: sent=%d msg/%d B recv=%d msg/%d B" name
           st.World.sent_msgs st.World.sent_bytes st.World.recv_msgs
           st.World.recv_bytes)
       (World.per_site world))

(* build a fixture, configure it, run the statements, capture everything.
   [domains = 1] is the sequential reference. *)
let run_scenario ~domains ~prepare ~stmts () =
  let fx = F.make ~caps:[ ("continental", Caps.sybase_like) ] () in
  M.set_domains fx.F.session domains;
  prepare fx;
  let events = ref [] in
  M.set_typed_trace fx.F.session
    (Some
       (fun e ->
         events :=
           Printf.sprintf "%.6f|%s" e.Trace.at_ms (Trace.render_kind e.Trace.kind)
           :: !events));
  let results =
    List.map
      (fun sql ->
        match M.exec fx.F.session sql with
        | Ok r -> M.result_to_string r
        | Error m -> "ERROR: " ^ m)
      stmts
  in
  {
    tr_results = results;
    tr_trace = List.rev !events;
    tr_metrics = M.metrics_json fx.F.session;
    tr_ledger = ledger fx.F.world;
    tr_clock = World.now_ms fx.F.world;
  }

let check_identical name a b =
  Alcotest.(check (list string)) (name ^ ": results") a.tr_results b.tr_results;
  Alcotest.(check (list string)) (name ^ ": typed trace") a.tr_trace b.tr_trace;
  Alcotest.(check string) (name ^ ": metrics json") a.tr_metrics b.tr_metrics;
  Alcotest.(check string) (name ^ ": per-site ledger") a.tr_ledger b.tr_ledger;
  Alcotest.(check (float 0.0)) (name ^ ": virtual clock") a.tr_clock b.tr_clock

let differential name ~prepare ~stmts () =
  let reference = run_scenario ~domains:1 ~prepare ~stmts () in
  List.iter
    (fun domains ->
      let got = run_scenario ~domains ~prepare ~stmts () in
      check_identical (Printf.sprintf "%s @ %d domains" name domains)
        reference got)
    [ 2; 4 ]

let e1_query =
  {|
USE avis national
LET car.type.status BE cars.cartype.carst vehicle.vty.vstat
SELECT %code, type, ~rate
FROM car
WHERE status = 'available'
|}

let e2_query =
  {|
USE continental delta united
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'
|}

let e3_query =
  {|
USE delta VITAL united VITAL
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'
|}

let e4_query =
  {|
USE continental VITAL delta united VITAL
UPDATE flight%
SET rate% = rate% * 1.1
WHERE sour% = 'Houston' AND dest% = 'San Antonio'
COMP continental
UPDATE flights
SET rate = rate / 1.1
WHERE source = 'Houston' AND destination = 'San Antonio'
|}

let e5_mtx =
  {|
BEGIN MULTITRANSACTION
  USE continental delta
  LET fltab.snu.sstat.clname BE
    f838.seatnu.seatstatus.clientname
    f747.snu.sstat.passname
  UPDATE fltab
  SET sstat = 'TAKEN', clname = 'wenders'
  WHERE snu = ( SELECT MIN(snu) FROM fltab WHERE sstat = 'FREE');
  USE avis national
  LET cartab.ccode.cstat BE
    cars.code.carst
    vehicle.vcode.vstat
  UPDATE cartab
  SET cstat = 'TAKEN', from = '07-04-64', to = '04-16-92', client = 'wenders'
  WHERE ccode = ( SELECT MIN(ccode) FROM cartab WHERE cstat = 'available');
COMMIT
  continental AND national
  delta AND avis
END MULTITRANSACTION
|}

let global_join =
  {|
USE continental delta
SELECT c.flnu, d.fnu
FROM continental.flights c, delta.flight d
WHERE c.source = d.source
|}

let nothing _ = ()

let test_diff_paper_examples () =
  differential "E1 multiple select" ~prepare:nothing ~stmts:[ e1_query ] ();
  differential "E2 multiple update" ~prepare:nothing ~stmts:[ e2_query ] ();
  differential "E3 vital update" ~prepare:nothing ~stmts:[ e3_query ] ();
  differential "E4 compensation" ~prepare:nothing ~stmts:[ e4_query ] ();
  differential "E5 multitransaction" ~prepare:nothing ~stmts:[ e5_mtx ] ()

let test_diff_global_join () =
  differential "global join" ~prepare:nothing ~stmts:[ global_join ] ()

let test_diff_sequences () =
  (* repeated statements through one session: status tables, caches and
     the recovery log all carry state across runs *)
  differential "E2 then E3 then E1" ~prepare:nothing
    ~stmts:[ e2_query; e3_query; e1_query ]
    ()

let test_diff_site_down () =
  differential "delta's site permanently down"
    ~prepare:(fun fx -> World.set_down fx.F.world "site2" true)
    ~stmts:[ e3_query; e5_mtx ]
    ()

let test_diff_outage_window () =
  differential "scheduled outage at united"
    ~prepare:(fun fx ->
      World.schedule_outage fx.F.world "site3" ~from_ms:5.0 ~until_ms:200.0)
    ~stmts:[ e2_query; e2_query ]
    ()

let test_diff_transient_injected () =
  (* a transient execute failure on one lane: the retry happens inside
     the domain branch, against that lane's private injector *)
  differential "transient abort at delta"
    ~prepare:(fun fx ->
      let svc = Narada.Directory.find fx.F.directory "delta" in
      Ldbms.Failure_injector.fail_next ~kind:Ldbms.Failure_injector.Transient
        svc.Narada.Service.injector Ldbms.Failure_injector.At_execute)
    ~stmts:[ e3_query ]
    ()

let test_diff_message_loss () =
  (* message loss shares one seeded PRNG, so the eligibility gate must
     refuse domain execution; the differential proves the fallback is
     exact (including retry counts and loss accounting) *)
  differential "seeded message loss"
    ~prepare:(fun fx -> World.set_loss fx.F.world ~seed:11 ~prob:0.15)
    ~stmts:[ e2_query; e3_query ]
    ()

let test_diff_pooled_session () =
  differential "performance layers on"
    ~prepare:(fun fx ->
      M.set_pooling fx.F.session true;
      M.set_plan_cache fx.F.session true)
    ~stmts:[ e2_query; e2_query; e1_query ]
    ()

let () =
  Alcotest.run "domains"
    [
      ( "dpool",
        [
          Alcotest.test_case "runs every job" `Quick test_dpool_runs_everything;
          Alcotest.test_case "width one is the caller" `Quick
            test_dpool_width_one_is_the_caller;
          Alcotest.test_case "jobs overlap in time" `Quick
            test_dpool_jobs_overlap;
          Alcotest.test_case "shared pools memoized" `Quick
            test_dpool_shared_memoized;
        ] );
      ( "2pc fan-out",
        [
          Alcotest.test_case "commit phase is max of branches" `Quick
            test_commit_phase_is_max_of_branches;
          Alcotest.test_case "identical under domains" `Quick
            test_commit_phase_same_under_domains;
        ] );
      ( "determinism differential",
        [
          Alcotest.test_case "paper examples" `Quick test_diff_paper_examples;
          Alcotest.test_case "global join" `Quick test_diff_global_join;
          Alcotest.test_case "statement sequences" `Quick test_diff_sequences;
          Alcotest.test_case "site down" `Quick test_diff_site_down;
          Alcotest.test_case "outage window" `Quick test_diff_outage_window;
          Alcotest.test_case "transient injected failure" `Quick
            test_diff_transient_injected;
          Alcotest.test_case "message loss fallback" `Quick
            test_diff_message_loss;
          Alcotest.test_case "pooled session" `Quick test_diff_pooled_session;
        ] );
    ]
