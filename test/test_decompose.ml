module E = Msql.Expand
module Dc = Msql.Decompose
module G = Msql.Gdd
module S = Sqlfront.Ast
open Sqlcore

let gdd () =
  let g = G.create () in
  let col = Schema.column in
  G.import_database g ~db:"avis"
    [ ("cars",
       [ col "code" Ty.Int; col "cartype" Ty.Str; col "rate" Ty.Float;
         col "carst" Ty.Str ]) ];
  G.import_database g ~db:"national"
    [ ("vehicle", [ col "vcode" Ty.Int; col "vty" Ty.Str; col "vstat" Ty.Str ]) ];
  G.import_database g ~db:"hertz"
    [ ("autos", [ col "aid" Ty.Int; col "aty" Ty.Str ]);
      ("branches", [ col "bid" Ty.Int; col "city" Ty.Str ]) ];
  g

let plan_of sql =
  match E.expand (gdd ()) (Msql.Mparser.parse_query sql) with
  | E.Global { gselect; grefs } -> Dc.decompose ~semijoin:true ~gselect ~grefs
  | E.Replicated _ | E.Transfer _ -> Alcotest.fail "expected global query"

let select_str s = Sqlfront.Sql_pp.select_to_string s

let test_coordinator_is_biggest_group () =
  let p =
    plan_of
      "USE avis national hertz SELECT a.aid FROM hertz.autos a, \
       hertz.branches b, avis.cars c WHERE a.aid = b.bid AND c.code = a.aid"
  in
  Alcotest.(check string) "hertz coordinates" "hertz" p.Dc.coordinator;
  Alcotest.(check int) "one shipped" 1 (List.length p.Dc.shipped)

let test_local_conjuncts_pushed () =
  let p =
    plan_of
      "USE avis national SELECT c.code, v.vcode FROM avis.cars c, \
       national.vehicle v WHERE c.carst = 'available' AND v.vstat = 'free' \
       AND c.cartype = v.vty"
  in
  (* coordinator avis (first, tie): national's subquery carries its local filter *)
  Alcotest.(check string) "coordinator" "avis" p.Dc.coordinator;
  (match p.Dc.shipped with
  | [ s ] ->
      Alcotest.(check string) "shipped db" "national" s.Dc.sdb;
      let sub = select_str s.Dc.subquery in
      Alcotest.(check bool) "local filter shipped" true
        (Astring_contains.contains sub "vstat");
      Alcotest.(check bool) "cross filter not shipped" false
        (Astring_contains.contains sub "cartype")
  | _ -> Alcotest.fail "one shipped expected");
  (* modified query applies the cross-database join and the coordinator filter *)
  let q' = select_str p.Dc.modified in
  Alcotest.(check bool) "join in Q'" true (Astring_contains.contains q' "v__vty");
  Alcotest.(check bool) "coord filter in Q'" true
    (Astring_contains.contains q' "carst");
  Alcotest.(check bool) "shipped filter gone from Q'" false
    (Astring_contains.contains q' "vstat")

let test_shipped_projects_only_used_columns () =
  let p =
    plan_of
      "USE avis national SELECT c.code FROM avis.cars c, national.vehicle v \
       WHERE c.cartype = v.vty"
  in
  match p.Dc.shipped with
  | [ s ] -> (
      match s.Dc.subquery.S.projections with
      | [ S.Proj_expr (S.Col { name = "vty"; _ }, Some "v__vty") ] -> ()
      | _ -> Alcotest.fail "only vty should ship")
  | _ -> Alcotest.fail "one shipped expected"

let test_unused_table_ships_constant () =
  let p =
    plan_of "USE avis national SELECT c.code FROM avis.cars c, national.vehicle v"
  in
  match p.Dc.shipped with
  | [ s ] -> (
      match s.Dc.subquery.S.projections with
      | [ S.Proj_expr (S.Lit (Value.Int 1), Some _) ] -> ()
      | _ -> Alcotest.fail "constant column expected")
  | _ -> Alcotest.fail "one shipped expected"

let test_single_db_no_shipping () =
  let p = plan_of "USE avis SELECT c.code FROM avis.cars c WHERE c.rate > 1" in
  Alcotest.(check int) "nothing shipped" 0 (List.length p.Dc.shipped);
  Alcotest.(check (list string)) "no cleanup" [] p.Dc.cleanup

let test_star_expansion () =
  let p =
    plan_of "USE avis national SELECT * FROM avis.cars c, national.vehicle v"
  in
  Alcotest.(check int) "all columns projected" 7
    (List.length p.Dc.modified.S.projections)

let test_subquery_rejected () =
  match
    plan_of
      "USE avis national SELECT c.code FROM avis.cars c, national.vehicle v \
       WHERE c.code = (SELECT MIN(vcode) FROM vehicle)"
  with
  | exception Dc.Error _ -> ()
  | _ -> Alcotest.fail "nested subquery must be rejected"

let test_duplicate_labels_rejected () =
  match
    plan_of "USE avis national SELECT x.code FROM avis.cars x, national.vehicle x"
  with
  | exception Dc.Error _ -> ()
  | _ -> Alcotest.fail "duplicate labels"

let test_ambiguous_column_rejected () =
  let g = gdd () in
  G.import_table g ~db:"national" ~table:"cars2"
    [ Schema.column "code" Ty.Int ];
  match
    (match
       E.expand g
         (Msql.Mparser.parse_query
            "USE avis national SELECT code FROM avis.cars, national.cars2")
     with
    | E.Global { gselect; grefs } -> Dc.decompose ~semijoin:true ~gselect ~grefs
    | E.Replicated _ | E.Transfer _ -> Alcotest.fail "expected global")
  with
  | exception Dc.Error _ -> ()
  | _ -> Alcotest.fail "ambiguous unqualified column"

let test_cleanup_lists_tmp_tables () =
  let p =
    plan_of
      "USE avis national hertz SELECT c.code FROM avis.cars c, \
       national.vehicle v, hertz.autos a WHERE c.code = v.vcode AND \
       v.vcode = a.aid"
  in
  Alcotest.(check int) "two temporaries" 2 (List.length p.Dc.cleanup)

let () =
  Alcotest.run "decompose"
    [
      ( "plans",
        [
          Alcotest.test_case "coordinator choice" `Quick test_coordinator_is_biggest_group;
          Alcotest.test_case "conjunct placement" `Quick test_local_conjuncts_pushed;
          Alcotest.test_case "needed columns only" `Quick test_shipped_projects_only_used_columns;
          Alcotest.test_case "unused table constant" `Quick test_unused_table_ships_constant;
          Alcotest.test_case "single db" `Quick test_single_db_no_shipping;
          Alcotest.test_case "star expansion" `Quick test_star_expansion;
          Alcotest.test_case "cleanup" `Quick test_cleanup_lists_tmp_tables;
        ] );
      ( "errors",
        [
          Alcotest.test_case "subquery rejected" `Quick test_subquery_rejected;
          Alcotest.test_case "duplicate labels" `Quick test_duplicate_labels_rejected;
          Alcotest.test_case "ambiguous column" `Quick test_ambiguous_column_rejected;
        ] );
    ]
