open Sqlcore
module D = Narada.Dol_ast
module Engine = Narada.Engine
module Caps = Ldbms.Capabilities

let status = Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (D.status_to_string s))
    (fun a b -> a = b)

(* ---- fixture: two-airline world -------------------------------------------- *)

let flight_schema =
  [ Schema.column "flnu" Ty.Int; Schema.column "source" Ty.Str;
    Schema.column "rate" Ty.Float ]

let setup ?(caps_a = Caps.ingres_like) ?(caps_b = Caps.ingres_like) () =
  let world = Netsim.World.create () in
  Netsim.World.add_site world (Netsim.Site.make "site1");
  Netsim.World.add_site world (Netsim.Site.make "site2");
  let dir = Narada.Directory.create () in
  let mk name site caps =
    let db = Ldbms.Database.create name in
    Ldbms.Database.load db ~name:"flights" flight_schema
      [ [| Value.Int 1; Value.Str "Houston"; Value.Float 100.0 |];
        [| Value.Int 2; Value.Str "Austin"; Value.Float 60.0 |] ];
    Narada.Directory.register dir (Narada.Service.make ~site ~caps db);
    db
  in
  let a = mk "aero" "site1" caps_a in
  let b = mk "bravo" "site2" caps_b in
  (world, dir, a, b)

let run ~world ~dir text =
  match Engine.run_text ~directory:dir ~world text with
  | Ok o -> o
  | Error m -> Alcotest.fail ("engine error: " ^ m)

let rate db n =
  let tbl = Ldbms.Database.find_table db "flights" in
  match
    List.find_opt (fun r -> Value.equal r.(0) (Value.Int n)) (Ldbms.Table.rows tbl)
  with
  | Some r -> r.(2)
  | None -> Value.Null

let value = Alcotest.testable Value.pp Value.equal

(* ---- parser / printer --------------------------------------------------------- *)

let paper_program = {|
DOLBEGIN
OPEN continental AT site1 AS cont;
OPEN delta AT site2 AS delta;
OPEN united AT site3 AS unit;
TASK T1 NOCOMMIT FOR cont
{ UPDATE flights SET rate = rate * 1.1 }
ENDTASK;
TASK T2 FOR delta
{ UPDATE flight SET rate = rate * 1.1 }
ENDTASK;
TASK T3 NOCOMMIT FOR unit
{ UPDATE flight SET rates = rates * 1.1 }
ENDTASK;
IF (T1=P) AND (T3=P) THEN
BEGIN
COMMIT T1, T3;
DOLSTATUS=0;
END;
ELSE
BEGIN
ABORT T1, T3;
DOLSTATUS=1;
END;
CLOSE cont delta unit;
DOLEND
|}

let test_parse_paper_program () =
  let prog = Narada.Dol_parser.parse paper_program in
  Alcotest.(check int) "statement count" 8 (List.length prog);
  Alcotest.(check (list string)) "task names" [ "T1"; "T2"; "T3" ]
    (D.task_names prog)

let test_pp_roundtrip () =
  let prog = Narada.Dol_parser.parse paper_program in
  let printed = Narada.Dol_pp.program_to_string prog in
  Alcotest.(check bool) "roundtrip" true (Narada.Dol_parser.parse printed = prog)

let test_parse_all_constructs () =
  let text = {|
DOLBEGIN
  OPEN a AS aa;
  OPEN b AT site2 AS bb;
  PARBEGIN
    TASK T1 NOCOMMIT FOR aa { SELECT 1 FROM t } ENDTASK;
    MOVE M1 FROM aa TO bb TABLE tmp { SELECT x FROM t } ENDMOVE;
  PAREND;
  IF NOT ((T1=P) OR (M1=E)) AND (T1=C) THEN
  BEGIN
    COMP K1 COMPENSATES T1 FOR aa { UPDATE t SET x = 0 } ENDCOMP;
  END;
  DOLSTATUS = 3;
  CLOSE aa bb;
DOLEND
|} in
  let prog = Narada.Dol_parser.parse text in
  let printed = Narada.Dol_pp.program_to_string prog in
  Alcotest.(check bool) "all constructs roundtrip" true
    (Narada.Dol_parser.parse printed = prog)

let test_parse_errors () =
  let bad = [ "DOLBEGIN"; "DOLBEGIN TASK T1 FOR a { x } DOLEND";
              "DOLBEGIN IF (T1=Z) THEN BEGIN END; DOLEND";
              "DOLBEGIN FROB; DOLEND" ] in
  List.iter
    (fun text ->
      match Narada.Dol_parser.parse text with
      | exception Narada.Dol_parser.Error _ -> ()
      | _ -> Alcotest.failf "expected parse error: %s" text)
    bad

(* ---- engine ---------------------------------------------------------------------- *)

let test_commit_path () =
  let world, dir, a, b = setup () in
  let o = run ~world ~dir {|
DOLBEGIN
  OPEN aero AT site1 AS aa;
  OPEN bravo AT site2 AS bb;
  PARBEGIN
    TASK T1 NOCOMMIT FOR aa { UPDATE flights SET rate = rate + 1 } ENDTASK;
    TASK T2 NOCOMMIT FOR bb { UPDATE flights SET rate = rate + 2 } ENDTASK;
  PAREND;
  IF (T1=P) AND (T2=P) THEN
  BEGIN COMMIT T1, T2; DOLSTATUS = 0; END;
  ELSE
  BEGIN ABORT T1, T2; DOLSTATUS = 1; END;
  CLOSE aa bb;
DOLEND
|} in
  Alcotest.(check int) "dolstatus" 0 o.Engine.dolstatus;
  Alcotest.check status "t1" D.C (Engine.status_of o "T1");
  Alcotest.check value "a updated" (Value.Float 101.0) (rate a 1);
  Alcotest.check value "b updated" (Value.Float 102.0) (rate b 1)

let test_abort_path_on_local_failure () =
  let world, dir, a, b = setup () in
  (* make bravo's task fail with a semantic error: unknown column *)
  let o = run ~world ~dir {|
DOLBEGIN
  OPEN aero AT site1 AS aa;
  OPEN bravo AT site2 AS bb;
  PARBEGIN
    TASK T1 NOCOMMIT FOR aa { UPDATE flights SET rate = rate + 1 } ENDTASK;
    TASK T2 NOCOMMIT FOR bb { UPDATE flights SET bogus = 1 } ENDTASK;
  PAREND;
  IF (T1=P) AND (T2=P) THEN
  BEGIN COMMIT T1, T2; DOLSTATUS = 0; END;
  ELSE
  BEGIN ABORT T1, T2; DOLSTATUS = 1; END;
  CLOSE aa bb;
DOLEND
|} in
  Alcotest.(check int) "dolstatus" 1 o.Engine.dolstatus;
  Alcotest.check status "t1 aborted" D.A (Engine.status_of o "T1");
  Alcotest.check status "t2 aborted" D.A (Engine.status_of o "T2");
  Alcotest.check value "a untouched" (Value.Float 100.0) (rate a 1);
  Alcotest.check value "b untouched" (Value.Float 100.0) (rate b 1)

let test_site_down_gives_N () =
  let world, dir, a, _b = setup () in
  ignore a;
  Netsim.World.set_down world "site2" true;
  let o = run ~world ~dir {|
DOLBEGIN
  OPEN aero AT site1 AS aa;
  OPEN bravo AT site2 AS bb;
  PARBEGIN
    TASK T1 NOCOMMIT FOR aa { UPDATE flights SET rate = rate + 1 } ENDTASK;
    TASK T2 NOCOMMIT FOR bb { UPDATE flights SET rate = rate + 2 } ENDTASK;
  PAREND;
  IF (T1=P) AND (T2=P) THEN
  BEGIN COMMIT T1, T2; DOLSTATUS = 0; END;
  ELSE
  BEGIN ABORT T1, T2; DOLSTATUS = 1; END;
  CLOSE aa bb;
DOLEND
|} in
  Alcotest.(check int) "dolstatus" 1 o.Engine.dolstatus;
  (* unreachable at OPEN: the task never ran *)
  Alcotest.check status "t2 not run" D.N (Engine.status_of o "T2")

let test_nocommit_on_autocommit_engine_is_E () =
  let world, dir, _, _ = setup ~caps_b:Caps.sybase_like () in
  let o = run ~world ~dir {|
DOLBEGIN
  OPEN bravo AT site2 AS bb;
  TASK T1 NOCOMMIT FOR bb { UPDATE flights SET rate = rate + 1 } ENDTASK;
  CLOSE bb;
DOLEND
|} in
  Alcotest.check status "plan inconsistency" D.E (Engine.status_of o "T1")

let test_select_task_collects_results () =
  let world, dir, _, _ = setup () in
  let o = run ~world ~dir {|
DOLBEGIN
  OPEN aero AT site1 AS aa;
  TASK T1 FOR aa { SELECT flnu, rate FROM flights WHERE source = 'Houston' } ENDTASK;
  DOLSTATUS = 0;
  CLOSE aa;
DOLEND
|} in
  match Engine.result_of o "T1" with
  | Some rel -> Alcotest.(check int) "one row" 1 (Relation.cardinality rel)
  | None -> Alcotest.fail "no result"

let test_compensation () =
  let world, dir, a, _ = setup ~caps_a:Caps.sybase_like () in
  (* autocommit task committed; compensation semantically undoes it *)
  let o = run ~world ~dir {|
DOLBEGIN
  OPEN aero AT site1 AS aa;
  TASK T1 FOR aa { UPDATE flights SET rate = rate * 2 } ENDTASK;
  IF (T1=C) THEN
  BEGIN
    COMP K1 COMPENSATES T1 FOR aa { UPDATE flights SET rate = rate / 2 } ENDCOMP;
  END;
  DOLSTATUS = 0;
  CLOSE aa;
DOLEND
|} in
  Alcotest.check status "compensated" D.X (Engine.status_of o "T1");
  Alcotest.check status "comp committed" D.C (Engine.status_of o "K1");
  Alcotest.check value "rate back" (Value.Float 100.0) (rate a 1)

let test_move () =
  let world, dir, _, b = setup () in
  let o = run ~world ~dir {|
DOLBEGIN
  OPEN aero AT site1 AS aa;
  OPEN bravo AT site2 AS bb;
  MOVE M1 FROM aa TO bb TABLE shipped { SELECT flnu, rate FROM flights } ENDMOVE;
  TASK T1 FOR bb { SELECT COUNT(*) FROM shipped } ENDTASK;
  DOLSTATUS = 0;
  CLOSE aa bb;
DOLEND
|} in
  Alcotest.check status "move done" D.C (Engine.status_of o "M1");
  (match Engine.result_of o "T1" with
  | Some rel -> (
      match Relation.rows rel with
      | [ [| Value.Int 2 |] ] -> ()
      | _ -> Alcotest.fail "wrong count")
  | None -> Alcotest.fail "no result");
  Alcotest.(check bool) "table exists at dst" true
    (Ldbms.Database.find_table_opt b "shipped" <> None)

let test_parallel_faster_than_sequential () =
  let world, dir, _, _ = setup () in
  let seq = run ~world ~dir {|
DOLBEGIN
  OPEN aero AT site1 AS aa;
  OPEN bravo AT site2 AS bb;
  TASK T1 FOR aa { UPDATE flights SET rate = rate + 1 } ENDTASK;
  TASK T2 FOR bb { UPDATE flights SET rate = rate + 1 } ENDTASK;
  DOLSTATUS = 0;
  CLOSE aa bb;
DOLEND
|} in
  let world2, dir2, _, _ = setup () in
  let par = run ~world:world2 ~dir:dir2 {|
DOLBEGIN
  OPEN aero AT site1 AS aa;
  OPEN bravo AT site2 AS bb;
  PARBEGIN
    TASK T1 FOR aa { UPDATE flights SET rate = rate + 1 } ENDTASK;
    TASK T2 FOR bb { UPDATE flights SET rate = rate + 1 } ENDTASK;
  PAREND;
  DOLSTATUS = 0;
  CLOSE aa bb;
DOLEND
|} in
  Alcotest.(check bool) "parallel strictly faster" true
    (par.Engine.elapsed_ms < seq.Engine.elapsed_ms)

let test_program_errors () =
  let world, dir, _, _ = setup () in
  let expect_error text =
    match Engine.run_text ~directory:dir ~world text with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected program error"
  in
  (* task on unopened alias *)
  expect_error "DOLBEGIN TASK T1 FOR nope { SELECT 1 FROM t } ENDTASK; DOLEND";
  (* duplicate task names *)
  expect_error {|
DOLBEGIN
  OPEN aero AT site1 AS aa;
  TASK T1 FOR aa { SELECT flnu FROM flights } ENDTASK;
  TASK T1 FOR aa { SELECT flnu FROM flights } ENDTASK;
DOLEND
|};
  (* wrong AT site *)
  expect_error "DOLBEGIN OPEN aero AT site2 AS aa; DOLEND"

let test_unknown_service_is_unavailable () =
  let world, dir, _, _ = setup () in
  let o = run ~world ~dir {|
DOLBEGIN
  OPEN ghost AS gg;
  TASK T1 FOR gg { SELECT 1 FROM t } ENDTASK;
  DOLSTATUS = 0;
  CLOSE gg;
DOLEND
|} in
  Alcotest.check status "unavailable means never ran" D.N (Engine.status_of o "T1")

let test_trace_events () =
  let world, dir, _, _ = setup () in
  let events = ref [] in
  (match
     Engine.run_text
       ~on_event:(fun e -> events := e :: !events)
       ~directory:dir ~world {|
DOLBEGIN
  OPEN aero AT site1 AS aa;
  TASK T1 NOCOMMIT FOR aa { UPDATE flights SET rate = rate + 1 } ENDTASK;
  IF (T1=P) THEN BEGIN COMMIT T1; DOLSTATUS = 0; END;
  CLOSE aa;
DOLEND
|}
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let trace = String.concat "\n" (List.rev !events) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("trace mentions " ^ needle) true
        (Astring_contains.contains trace needle))
    [ "OPEN aero"; "T1 -> P"; "IF (T1=P)"; "=> THEN"; "T1 -> C"; "DOLSTATUS = 0" ]

let test_engine_closes_forgotten_aliases () =
  let world, dir, _, _ = setup () in
  (* no CLOSE statement: run must still succeed and disconnect *)
  let o = run ~world ~dir {|
DOLBEGIN
  OPEN aero AT site1 AS aa;
  TASK T1 FOR aa { SELECT flnu FROM flights } ENDTASK;
  DOLSTATUS = 0;
DOLEND
|} in
  Alcotest.(check int) "ok" 0 o.Engine.dolstatus

(* ---- random program round-trip -------------------------------------------------- *)

let gen_program =
  let open QCheck.Gen in
  let ident = oneofl [ "t1"; "t2"; "aa"; "bb"; "svc" ] in
  let block = oneofl [ "SELECT 1 FROM t"; "UPDATE t SET x = (x + 1)"; "DROP TABLE u" ] in
  let status = oneofl D.[ P; C; A; E; N; X ] in
  let rec cond n =
    if n = 0 then map2 (fun t s -> D.Status_is (t, s)) ident status
    else
      frequency
        [
          (3, map2 (fun t s -> D.Status_is (t, s)) ident status);
          (1, map (fun c -> D.Not c) (cond (n - 1)));
          (1, map2 (fun a b -> D.And (a, b)) (cond (n - 1)) (cond (n - 1)));
          (1, map2 (fun a b -> D.Or (a, b)) (cond (n - 1)) (cond (n - 1)));
        ]
  in
  let mode = oneofl D.[ With_commit; No_commit ] in
  (* unique names per program to satisfy no real constraint (parsing only) *)
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Printf.sprintf "%s%d" prefix !counter
  in
  let rec stmt n =
    let base =
      [
        ( 2,
          map2
            (fun s a -> D.Open { service = s; open_site = None; alias = a })
            ident ident );
        ( 3,
          map2
            (fun (m, tgt) b ->
              D.Task { tname = fresh "t"; mode = m; target = tgt; commands = b })
            (pair mode ident) block );
        (1, map (fun a -> D.Close [ a ]) ident);
        (1, map (fun ns -> D.Commit_tasks ns) (list_size (1 -- 2) ident));
        (1, map (fun ns -> D.Abort_tasks ns) (list_size (1 -- 2) ident));
        ( 1,
          map2
            (fun tgt b ->
              D.Comp
                { cname = fresh "k"; compensates = Some "t1"; target = tgt;
                  commands = b })
            ident block );
        ( 1,
          map2
            (fun (s, d) b ->
              D.Move
                { mname = fresh "m"; src = s; dst = d; dest_table = "tmp";
                  query = b; reduce = None })
            (pair ident ident) block );
        (1, map (fun i -> D.Set_status i) (int_bound 9));
      ]
    in
    let nested =
      if n > 0 then
        [
          (2, map (fun ss -> D.Parallel ss) (list_size (0 -- 2) (stmt (n - 1))));
          ( 2,
            map2
              (fun c (a, b) -> D.If (c, a, b))
              (cond 1)
              (pair
                 (list_size (0 -- 2) (stmt (n - 1)))
                 (list_size (0 -- 2) (stmt (n - 1)))) );
        ]
      else []
    in
    frequency (base @ nested)
  in
  QCheck.Gen.list_size (QCheck.Gen.int_range 0 6) (stmt 2)

let prop_program_roundtrip =
  QCheck.Test.make ~name:"random DOL program pp/parse roundtrip" ~count:300
    (QCheck.make gen_program) (fun prog ->
      let printed = Narada.Dol_pp.program_to_string prog in
      match Narada.Dol_parser.parse printed with
      | parsed -> parsed = prog
      | exception Narada.Dol_parser.Error _ -> false)

let () =
  Alcotest.run "dol"
    [
      ( "syntax",
        [
          Alcotest.test_case "parse paper program" `Quick test_parse_paper_program;
          Alcotest.test_case "pp roundtrip" `Quick test_pp_roundtrip;
          Alcotest.test_case "all constructs" `Quick test_parse_all_constructs;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_program_roundtrip ] );
      ( "engine",
        [
          Alcotest.test_case "commit path" `Quick test_commit_path;
          Alcotest.test_case "abort path" `Quick test_abort_path_on_local_failure;
          Alcotest.test_case "site down" `Quick test_site_down_gives_N;
          Alcotest.test_case "nocommit on autocommit" `Quick test_nocommit_on_autocommit_engine_is_E;
          Alcotest.test_case "select results" `Quick test_select_task_collects_results;
          Alcotest.test_case "compensation" `Quick test_compensation;
          Alcotest.test_case "move" `Quick test_move;
          Alcotest.test_case "parallel faster" `Quick test_parallel_faster_than_sequential;
          Alcotest.test_case "program errors" `Quick test_program_errors;
          Alcotest.test_case "unknown service" `Quick test_unknown_service_is_unavailable;
          Alcotest.test_case "auto close" `Quick test_engine_closes_forgotten_aliases;
          Alcotest.test_case "trace" `Quick test_trace_events;
        ] );
    ]
