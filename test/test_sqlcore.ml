open Sqlcore

let value = Alcotest.testable Value.pp Value.equal

(* ---- Value ---------------------------------------------------------- *)

let test_value_compare () =
  Alcotest.(check bool) "null lowest" true (Value.compare Value.Null (Value.Int (-1)) < 0);
  Alcotest.(check bool) "int vs float" true (Value.compare (Value.Int 2) (Value.Float 2.5) < 0);
  Alcotest.(check bool) "float vs int eq" true (Value.compare (Value.Float 2.0) (Value.Int 2) = 0);
  Alcotest.(check bool) "strings" true (Value.compare (Value.Str "a") (Value.Str "b") < 0);
  Alcotest.(check bool) "numbers before strings" true
    (Value.compare (Value.Int 999) (Value.Str "0") < 0)

let test_value_equal () =
  (* equal must agree with compare, in both directions: a mixed Int/Float
     pair that compares 0 is equal *)
  Alcotest.(check bool) "int = float" true
    (Value.equal (Value.Int 1) (Value.Float 1.0));
  Alcotest.(check bool) "float = int" true
    (Value.equal (Value.Float 1.0) (Value.Int 1));
  Alcotest.(check bool) "int <> float" false
    (Value.equal (Value.Int 1) (Value.Float 1.5));
  Alcotest.(check bool) "float <> int" false
    (Value.equal (Value.Float 1.5) (Value.Int 1));
  Alcotest.(check bool) "same string" true (Value.equal (Value.Str "x") (Value.Str "x"));
  Alcotest.(check bool) "null eq null" true (Value.equal Value.Null Value.Null)

let test_value_compare_exact_bigint () =
  (* the cross-type comparison must not round the int to a double: above
     2^53 adjacent ints share a float image but stay distinct values *)
  let big = 9007199254740992 (* 2^53 *) in
  Alcotest.(check bool) "int = its float image" true
    (Value.compare (Value.Int big) (Value.Float 9007199254740992.0) = 0);
  Alcotest.(check bool) "2^53+1 above Float 2^53" true
    (Value.compare (Value.Int (big + 1)) (Value.Float 9007199254740992.0) > 0);
  Alcotest.(check bool) "Float 2^53 below 2^53+1" true
    (Value.compare (Value.Float 9007199254740992.0) (Value.Int (big + 1)) < 0);
  Alcotest.(check bool) "adjacent ints distinct" true
    (Value.compare (Value.Int big) (Value.Int (big + 1)) < 0);
  (* fractions and extremes *)
  Alcotest.(check bool) "int below its successor's fraction" true
    (Value.compare (Value.Int 2) (Value.Float 2.5) < 0);
  Alcotest.(check bool) "negative fraction" true
    (Value.compare (Value.Int (-3)) (Value.Float (-2.5)) < 0);
  Alcotest.(check bool) "huge float above max_int" true
    (Value.compare (Value.Int max_int) (Value.Float 1e19) < 0);
  Alcotest.(check bool) "huge negative float below min_int" true
    (Value.compare (Value.Int min_int) (Value.Float (-1e19)) > 0)

let test_hash_join_exact_bigint_keys () =
  (* regression: keys routed through string_of_float merge adjacent ints
     above 2^53 into one bucket, joining rows whose values differ *)
  let big = 9007199254740992 (* 2^53 *) in
  let mk name vals =
    Relation.make
      [ Schema.column name Ty.Int ]
      (List.map (fun n -> [| Value.Int n |]) vals)
  in
  let a = mk "x" [ big; big + 1 ] and b = mk "y" [ big; big + 1; big + 2 ] in
  let joined = Relation.hash_join a b ~keys:[ (0, 0) ] in
  Alcotest.(check int) "only exact matches join" 2
    (Relation.cardinality joined);
  List.iter
    (fun row -> Alcotest.check value "key columns agree" row.(0) row.(1))
    (Relation.rows joined);
  (* Int and integral Float still share a key across the type boundary *)
  let c =
    Relation.make
      [ Schema.column "z" Ty.Float ]
      [ [| Value.Float 9007199254740992.0 |] ]
  in
  Alcotest.(check int) "int matches its exact float image" 1
    (Relation.cardinality (Relation.hash_join a c ~keys:[ (0, 0) ]))

let test_equal_unordered_mixed () =
  (* Int/Float mixed multisets: sorting by compare interleaves the two
     classes, and equal agrees with the sort order, so numerically equal
     multisets match regardless of representation *)
  let open Value in
  let schema = [ Schema.column "x" Ty.Float ] in
  let a = Relation.make schema [ [| Int 1 |]; [| Float 2.0 |] ] in
  let b = Relation.make schema [ [| Float 1.0 |]; [| Int 2 |] ] in
  Alcotest.(check bool) "mixed multisets equal" true (Relation.equal_unordered a b);
  Alcotest.(check bool) "mixed multisets equal (flipped)" true
    (Relation.equal_unordered b a);
  let c = Relation.make schema [ [| Float 1.5 |]; [| Int 2 |] ] in
  Alcotest.(check bool) "distinct multisets differ" false
    (Relation.equal_unordered a c)

let test_value_literal_roundtrip () =
  let cases =
    [ Value.Null; Value.Int 42; Value.Int (-7); Value.Float 1.5; Value.Str "hello";
      Value.Str "it's"; Value.Str ""; Value.Bool true; Value.Bool false ]
  in
  List.iter
    (fun v ->
      Alcotest.check value "roundtrip" v (Value.of_literal_exn (Value.to_literal v)))
    cases

let test_value_to_string () =
  Alcotest.(check string) "null" "NULL" (Value.to_string Value.Null);
  Alcotest.(check string) "float int-valued" "45.0" (Value.to_string (Value.Float 45.0));
  Alcotest.(check string) "string unquoted" "abc" (Value.to_string (Value.Str "abc"));
  Alcotest.(check string) "literal quoted" "'it''s'" (Value.to_literal (Value.Str "it's"))

let test_value_size () =
  Alcotest.(check int) "str size" 5 (Value.size_bytes (Value.Str "hello"));
  Alcotest.(check int) "int size" 8 (Value.size_bytes (Value.Int 3))

(* ---- Ty -------------------------------------------------------------- *)

let test_ty_of_string () =
  Alcotest.(check bool) "int" true (Ty.of_string "integer" = Some Ty.Int);
  Alcotest.(check bool) "varchar" true (Ty.of_string "VARCHAR" = Some Ty.Str);
  Alcotest.(check bool) "date is str" true (Ty.of_string "DATE" = Some Ty.Str);
  Alcotest.(check bool) "unknown" true (Ty.of_string "blob" = None)

(* ---- Names ------------------------------------------------------------ *)

let test_names () =
  Alcotest.(check bool) "equal ci" true (Names.equal "Cars" "CARS");
  Alcotest.(check bool) "mem ci" true (Names.mem "RATE" [ "code"; "rate" ]);
  Alcotest.(check (option int)) "assoc ci" (Some 2)
    (Names.assoc_opt "Foo" [ ("bar", 1); ("FOO", 2) ])

(* ---- Like -------------------------------------------------------------- *)

let test_sql_like () =
  let check pattern s expected =
    Alcotest.(check bool)
      (Printf.sprintf "%s ~ %s" pattern s)
      expected
      (Like.sql_like ~pattern s)
  in
  check "abc" "abc" true;
  check "a%" "abc" true;
  check "%c" "abc" true;
  check "a_c" "abc" true;
  check "a_c" "abbc" false;
  check "%" "" true;
  check "_" "" false;
  check "%b%" "abc" true;
  check "s%n" "sedan" true;
  check "s%n" "suv" false

let test_identifier_match () =
  let check pattern s expected =
    Alcotest.(check bool)
      (Printf.sprintf "%s ~ %s" pattern s)
      expected
      (Like.identifier ~pattern s)
  in
  check "rate%" "rate" true;
  check "rate%" "rates" true;
  check "rate%" "RATES" true;
  check "%code" "code" true;
  check "%code" "vcode" true;
  check "%code" "codex" false;
  check "flight%" "flights" true;
  check "flight%" "fl838" false;
  (* '_' is a literal in identifiers, not a wildcard *)
  check "a_b" "a_b" true;
  check "a_b" "axb" false

let prop_like_vs_naive =
  (* compare against a naive reference matcher on alphabet {a,b,%} *)
  let gen =
    QCheck.Gen.(
      pair
        (string_size ~gen:(oneofl [ 'a'; 'b'; '%' ]) (0 -- 8))
        (string_size ~gen:(oneofl [ 'a'; 'b' ]) (0 -- 8)))
  in
  let rec naive p s =
    match p, s with
    | "", "" -> true
    | "", _ -> false
    | _ ->
        if p.[0] = '%' then
          naive (String.sub p 1 (String.length p - 1)) s
          || (s <> "" && naive p (String.sub s 1 (String.length s - 1)))
        else
          s <> ""
          && p.[0] = s.[0]
          && naive (String.sub p 1 (String.length p - 1)) (String.sub s 1 (String.length s - 1))
  in
  QCheck.Test.make ~name:"like agrees with naive matcher" ~count:500
    (QCheck.make gen) (fun (p, s) -> Like.sql_like ~pattern:p s = naive p s)

(* ---- Schema ------------------------------------------------------------- *)

let schema_abc =
  [ Schema.column "a" Ty.Int; Schema.column "b" Ty.Str; Schema.column "c" Ty.Float ]

let test_schema_lookup () =
  Alcotest.(check (option int)) "find b" (Some 1) (Schema.find_index schema_abc "B");
  Alcotest.(check (option int)) "missing" None (Schema.find_index schema_abc "z");
  let qualified = Schema.requalify (Some "t") schema_abc in
  Alcotest.(check (option int)) "qualified" (Some 0)
    (Schema.find_index qualified ~qualifier:"T" "a");
  Alcotest.(check (option int)) "wrong qualifier" None
    (Schema.find_index qualified ~qualifier:"u" "a")

let test_schema_ambiguity () =
  let dup = schema_abc @ [ Schema.column "a" Ty.Str ] in
  Alcotest.(check int) "two matches" 2 (List.length (Schema.find_indices dup "a"))

let test_schema_union_compat () =
  let other =
    [ Schema.column "x" Ty.Int; Schema.column "y" Ty.Str; Schema.column "z" Ty.Float ]
  in
  Alcotest.(check bool) "compatible" true (Schema.union_compatible schema_abc other);
  Alcotest.(check bool) "not equal (names)" false (Schema.equal schema_abc other);
  Alcotest.(check bool) "incompatible arity" false
    (Schema.union_compatible schema_abc (List.tl other))

(* ---- Relation ------------------------------------------------------------ *)

let rel rows = Relation.make schema_abc (List.map Row.of_list rows)
let r3 =
  rel
    [
      [ Value.Int 1; Value.Str "x"; Value.Float 1.0 ];
      [ Value.Int 2; Value.Str "y"; Value.Float 2.0 ];
      [ Value.Int 1; Value.Str "x"; Value.Float 1.0 ];
    ]

let test_relation_make_checks_arity () =
  Alcotest.check_raises "arity" (Invalid_argument "Relation.make: row arity 1, schema arity 3")
    (fun () -> ignore (Relation.make schema_abc [ Row.of_list [ Value.Int 1 ] ]))

let test_relation_distinct () =
  Alcotest.(check int) "distinct removes dup" 2 (Relation.cardinality (Relation.distinct r3))

let test_relation_union_product () =
  let u = Relation.union r3 r3 in
  Alcotest.(check int) "union all" 6 (Relation.cardinality u);
  let p = Relation.product r3 r3 in
  Alcotest.(check int) "product" 9 (Relation.cardinality p);
  Alcotest.(check int) "product arity" 6 (Schema.arity (Relation.schema p))

let test_relation_order_limit () =
  let sorted = Relation.order_by (fun a b -> Value.compare b.(0) a.(0)) r3 in
  (match Relation.rows sorted with
  | first :: _ -> Alcotest.check value "max first" (Value.Int 2) first.(0)
  | [] -> Alcotest.fail "empty");
  Alcotest.(check int) "limit" 2 (Relation.cardinality (Relation.limit 2 r3));
  Alcotest.(check int) "limit over" 3 (Relation.cardinality (Relation.limit 10 r3))

let test_relation_equal_unordered () =
  let shuffled =
    rel
      [
        [ Value.Int 2; Value.Str "y"; Value.Float 2.0 ];
        [ Value.Int 1; Value.Str "x"; Value.Float 1.0 ];
        [ Value.Int 1; Value.Str "x"; Value.Float 1.0 ];
      ]
  in
  Alcotest.(check bool) "unordered equal" true (Relation.equal_unordered r3 shuffled);
  Alcotest.(check bool) "ordered not equal" false (Relation.equal r3 shuffled)

let prop_distinct_idempotent =
  let gen = QCheck.Gen.(list_size (0 -- 20) (int_bound 3)) in
  QCheck.Test.make ~name:"distinct idempotent" ~count:200 (QCheck.make gen)
    (fun ints ->
      let r =
        Relation.make
          [ Schema.column "n" Ty.Int ]
          (List.map (fun n -> [| Value.Int n |]) ints)
      in
      let d = Relation.distinct r in
      Relation.equal (Relation.distinct d) d)

let prop_union_cardinality =
  let gen = QCheck.Gen.(pair (small_list int) (small_list int)) in
  QCheck.Test.make ~name:"union cardinality adds" ~count:200 (QCheck.make gen)
    (fun (xs, ys) ->
      let mk l =
        Relation.make
          [ Schema.column "n" Ty.Int ]
          (List.map (fun n -> [| Value.Int n |]) l)
      in
      Relation.cardinality (Relation.union (mk xs) (mk ys))
      = List.length xs + List.length ys)

(* ---- Scan ------------------------------------------------------------------ *)

let test_scan_comments () =
  let sc = Scan.create "  -- hi\n /* multi \n line */ x" in
  Scan.skip_ws_and_comments sc;
  Alcotest.(check (option char)) "reaches x" (Some 'x') (Scan.peek sc)

let test_scan_string () =
  let sc = Scan.create "'it''s fine'" in
  Alcotest.(check string) "escaped quote" "it's fine" (Scan.quoted_string sc)

let test_scan_error_position () =
  let sc = Scan.create "ab\ncd" in
  Scan.advance sc;
  Scan.advance sc;
  Scan.advance sc;
  Alcotest.(check int) "line" 2 (Scan.line sc);
  Alcotest.(check int) "col" 1 (Scan.column sc)

let qtests = List.map QCheck_alcotest.to_alcotest
    [ prop_like_vs_naive; prop_distinct_idempotent; prop_union_cardinality ]

let () =
  Alcotest.run "sqlcore"
    [
      ( "value",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "compare exact above 2^53" `Quick
            test_value_compare_exact_bigint;
          Alcotest.test_case "equal" `Quick test_value_equal;
          Alcotest.test_case "literal roundtrip" `Quick test_value_literal_roundtrip;
          Alcotest.test_case "to_string" `Quick test_value_to_string;
          Alcotest.test_case "size" `Quick test_value_size;
        ] );
      ("ty", [ Alcotest.test_case "of_string" `Quick test_ty_of_string ]);
      ("names", [ Alcotest.test_case "case-insensitive" `Quick test_names ]);
      ( "like",
        [
          Alcotest.test_case "sql like" `Quick test_sql_like;
          Alcotest.test_case "identifier match" `Quick test_identifier_match;
        ] );
      ( "schema",
        [
          Alcotest.test_case "lookup" `Quick test_schema_lookup;
          Alcotest.test_case "ambiguity" `Quick test_schema_ambiguity;
          Alcotest.test_case "union compat" `Quick test_schema_union_compat;
        ] );
      ( "relation",
        [
          Alcotest.test_case "arity check" `Quick test_relation_make_checks_arity;
          Alcotest.test_case "distinct" `Quick test_relation_distinct;
          Alcotest.test_case "union/product" `Quick test_relation_union_product;
          Alcotest.test_case "order/limit" `Quick test_relation_order_limit;
          Alcotest.test_case "equal unordered" `Quick test_relation_equal_unordered;
          Alcotest.test_case "equal unordered mixed int/float" `Quick
            test_equal_unordered_mixed;
          Alcotest.test_case "hash join exact keys above 2^53" `Quick
            test_hash_join_exact_bigint_keys;
        ] );
      ( "scan",
        [
          Alcotest.test_case "comments" `Quick test_scan_comments;
          Alcotest.test_case "string escapes" `Quick test_scan_string;
          Alcotest.test_case "positions" `Quick test_scan_error_position;
        ] );
      ("properties", qtests);
    ]
