(* Differential testing of the dataflow scheduler (PR 10): every workload
   must leave byte-identical database state, task statuses and results
   whether the wave schedule is on or off — only the virtual clock may
   differ. The schedule regroups *consecutive* independent statements, so
   message order (and therefore every seeded loss draw) is preserved; the
   loss scenario below exercises exactly that invariant. *)
open Sqlcore
module D = Narada.Dol_ast
module Engine = Narada.Engine
module Opt = Narada.Dol_opt
module World = Netsim.World
module F = Msql.Fixtures
module M = Msql.Msession
module Metrics = Msql.Metrics

let contains = Astring_contains.contains

(* blank out virtual timings ("12.34 ms" -> "T ms"): latency is the one
   thing the scheduler is allowed to change *)
let scrub s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let is_t c = (c >= '0' && c <= '9') || c = '.' in
  let i = ref 0 in
  while !i < n do
    if is_t s.[!i] then begin
      let j = ref !i in
      while !j < n && is_t s.[!j] do incr j done;
      if !j + 2 < n && s.[!j] = ' ' && s.[!j + 1] = 'm' && s.[!j + 2] = 's'
      then (Buffer.add_string b "T ms"; i := !j + 3)
      else (Buffer.add_string b (String.sub s !i (!j - !i)); i := !j)
    end
    else (Buffer.add_char b s.[!i]; incr i)
  done;
  Buffer.contents b

let all_tables =
  [ ("continental", "flights"); ("continental", "f838"); ("delta", "flight");
    ("delta", "f747"); ("united", "flight"); ("avis", "cars");
    ("national", "vehicle") ]

let state_fingerprint fx =
  String.concat "\n"
    (List.map
       (fun (db, table) ->
         Printf.sprintf "%s.%s:%s" db table
           (String.concat "|"
              (List.map
                 (fun r ->
                   String.concat "," (List.map Value.to_string (Row.to_list r)))
                 (Relation.rows (F.scan fx ~db ~table)))))
       all_tables)

let run_side ~dataflow ~faults sqls =
  let fx = F.make () in
  M.set_dataflow fx.F.session dataflow;
  faults fx;
  let results =
    List.map
      (fun sql ->
        match M.exec fx.F.session sql with
        | Ok r -> scrub (M.result_to_string r)
        | Error m -> "error: " ^ m)
      sqls
  in
  let st = World.stats fx.F.world in
  (fx, results, st)

let check_differential ?(faults = fun _ -> ()) name sqls =
  let fx_off, r_off, st_off = run_side ~dataflow:false ~faults sqls in
  let fx_on, r_on, st_on = run_side ~dataflow:true ~faults sqls in
  List.iteri
    (fun k (a, b) ->
      Alcotest.(check string) (Printf.sprintf "%s: result %d" name k) a b)
    (List.combine r_off r_on);
  Alcotest.(check string)
    (name ^ ": byte-identical state")
    (state_fingerprint fx_off) (state_fingerprint fx_on);
  Alcotest.(check int) (name ^ ": same messages") st_off.World.messages
    st_on.World.messages;
  Alcotest.(check int) (name ^ ": same bytes") st_off.World.bytes_moved
    st_on.World.bytes_moved;
  Alcotest.(check int) (name ^ ": same losses") st_off.World.lost
    st_on.World.lost

(* ---- fixture workloads ------------------------------------------------- *)

let test_multiple_select () =
  check_differential "select"
    [ {|USE continental delta united avis national
        SELECT %nu FROM flight%|} ]

let test_vital_update () =
  check_differential "vital update"
    [
      {|USE continental VITAL delta united VITAL
        UPDATE flight% SET rate% = rate% * 1.1
        WHERE sour% = 'Houston' AND dest% = 'San Antonio'|};
      {|USE continental delta united
        SELECT %nu, rate% FROM flight%|};
    ]

let test_mtx () =
  check_differential "multitransaction"
    [
      {|
BEGIN MULTITRANSACTION
  USE continental delta
  LET fltab.snu.sstat.clname BE
    f838.seatnu.seatstatus.clientname
    f747.snu.sstat.passname
  UPDATE fltab
  SET sstat = 'TAKEN', clname = 'smith'
  WHERE snu = ( SELECT MIN(snu) FROM fltab WHERE sstat = 'FREE');
COMMIT
  continental AND delta
END MULTITRANSACTION
|};
    ]

let test_data_transfer () =
  check_differential "data transfer"
    [
      {|USE avis national
        INSERT INTO avis.cars (code, cartype, carst)
        SELECT v.vcode, v.vty, v.vstat FROM national.vehicle v|};
      {|USE avis SELECT code, carst FROM avis.cars|};
    ]

(* ---- loss scenario ----------------------------------------------------- *)

(* a seeded lossy network forces retransmissions; because the schedule
   preserves message order, both sides must consume identical loss draws
   and land on identical state *)
let test_seeded_loss () =
  let faults fx = World.set_loss fx.F.world ~seed:42 ~prob:0.15 in
  check_differential ~faults "seeded loss"
    [
      {|USE continental VITAL delta united VITAL
        UPDATE flight% SET rate% = rate% * 1.1
        WHERE sour% = 'Houston' AND dest% = 'San Antonio'|};
      {|USE continental delta united avis national
        SELECT %nu FROM flight%|};
    ]

(* ---- Dol_opt.optimize with every pass on ------------------------------- *)

(* the classic rewrites composed with the dataflow pass: same outcome and
   state as the untouched paper-shaped program *)
let test_optimize_all_passes () =
  let sql =
    {|USE continental VITAL delta united VITAL
      UPDATE flight% SET rate% = rate% * 1.1
      WHERE sour% = 'Houston' AND dest% = 'San Antonio'|}
  in
  let fx1 = F.make () in
  M.set_dataflow fx1.F.session false;
  let prog =
    match M.translate fx1.F.session sql with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let run fx p =
    match Engine.run ~directory:fx.F.directory ~world:fx.F.world p with
    | Ok o -> o
    | Error m -> Alcotest.fail m
  in
  let o1 = run fx1 prog in
  let fx2 = F.make () in
  let o2 = run fx2 (Opt.optimize ~dataflow:true prog) in
  Alcotest.(check int) "same dolstatus" o1.Engine.dolstatus o2.Engine.dolstatus;
  Alcotest.(check bool) "same statuses" true
    (List.sort compare o1.Engine.statuses = List.sort compare o2.Engine.statuses);
  Alcotest.(check string) "byte-identical state" (state_fingerprint fx1)
    (state_fingerprint fx2);
  Alcotest.(check bool) "schedule is faster" true
    (o2.Engine.elapsed_ms < o1.Engine.elapsed_ms)

(* ---- metrics & session flag (satellite: observability) ----------------- *)

let test_metrics_and_flag () =
  let fx = F.make () in
  let default_on =
    match Sys.getenv_opt "MSQL_TEST_DATAFLOW" with
    | Some ("0" | "false" | "off") -> false
    | Some _ | None -> true
  in
  Alcotest.(check bool) "default follows MSQL_TEST_DATAFLOW" default_on
    (M.dataflow_enabled fx.F.session);
  M.set_dataflow fx.F.session true;
  (match
     M.exec fx.F.session
       {|USE continental delta united avis national
         SELECT %nu FROM flight%|}
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let m = M.metrics fx.F.session in
  Alcotest.(check bool) "dag observed" true (m.Metrics.dataflow_nodes > 0);
  Alcotest.(check bool) "waves planned" true
    (m.Metrics.dataflow_waves_planned > 0);
  Alcotest.(check bool) "waves executed" true (m.Metrics.dataflow_waves > 0);
  (* the critical path can never exceed the serial sum of the same waves *)
  Alcotest.(check bool) "crit <= serial" true
    (m.Metrics.dataflow_crit_ms <= m.Metrics.dataflow_serial_ms +. 1e-9);
  let json = M.metrics_json fx.F.session in
  Alcotest.(check bool) "json has dataflow block" true
    (contains json "\"dataflow\"");
  Alcotest.(check bool) "json has overlap ratio" true
    (contains json "\"overlap_ratio\"");
  M.set_dataflow fx.F.session false;
  Alcotest.(check bool) "flag off" false (M.dataflow_enabled fx.F.session)

let () =
  Alcotest.run "dataflow"
    [
      ( "differential",
        [
          Alcotest.test_case "multiple select" `Quick test_multiple_select;
          Alcotest.test_case "vital update" `Quick test_vital_update;
          Alcotest.test_case "multitransaction" `Quick test_mtx;
          Alcotest.test_case "data transfer" `Quick test_data_transfer;
          Alcotest.test_case "seeded loss" `Quick test_seeded_loss;
          Alcotest.test_case "all passes composed" `Quick
            test_optimize_all_passes;
        ] );
      ( "observability",
        [ Alcotest.test_case "metrics and flag" `Quick test_metrics_and_flag ] );
    ]
