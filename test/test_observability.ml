(* The typed observability layer: trace event stream ordering, the
   metrics registry against the world's per-site ledger, EXPLAIN
   MULTIPLE's phase rendering, and the pool-release epilogue on
   malformed programs. *)
open Sqlcore
module M = Msql.Msession
module Metrics = Msql.Metrics
module Engine = Narada.Engine
module Trace = Narada.Trace
module D = Narada.Dol_ast
module Caps = Ldbms.Capabilities

let col = Schema.column
let s x = Value.Str x
let i x = Value.Int x
let f x = Value.Float x

(* ---- fixtures --------------------------------------------------------- *)

let flight_schema =
  [ col "flnu" Ty.Int; col "source" Ty.Str; col "rate" Ty.Float ]

(* two-airline world, as in test_dol *)
let engine_setup () =
  let world = Netsim.World.create () in
  Netsim.World.add_site world (Netsim.Site.make "site1");
  Netsim.World.add_site world (Netsim.Site.make "site2");
  let dir = Narada.Directory.create () in
  let mk name site =
    let db = Ldbms.Database.create name in
    Ldbms.Database.load db ~name:"flights" flight_schema
      [ [| i 1; s "Houston"; f 100.0 |]; [| i 2; s "Austin"; f 60.0 |] ];
    Narada.Directory.register dir
      (Narada.Service.make ~site ~caps:Caps.ingres_like db)
  in
  mk "aero" "site1";
  mk "bravo" "site2";
  (world, dir)

(* three-database federation sized so the semijoin cost gate fires: a
   small coordinator relation (sales) against two large remote ones *)
let sales_schema = [ col "sid" Ty.Int; col "part_id" Ty.Int; col "qty" Ty.Int ]

let parts_schema =
  [ col "pid" Ty.Int; col ~width:16 "pname" Ty.Str; col "price" Ty.Float ]

let stock_schema = [ col "spid" Ty.Int; col ~width:16 "wh" Ty.Str ]

let make_fed3 () =
  let world = Netsim.World.create () in
  let directory = Narada.Directory.create () in
  let session = M.create ~world ~directory () in
  let sales = List.init 10 (fun k -> [| i k; i (k mod 5); i (k + 1) |]) in
  let parts =
    List.init 200 (fun k -> [| i k; s (Printf.sprintf "part%d" k); f 9.5 |])
  in
  let stock =
    List.init 150 (fun k -> [| i (k mod 50); s (Printf.sprintf "wh%d" k) |])
  in
  List.iter
    (fun (name, site, tname, schema, rows) ->
      Netsim.World.add_site world (Netsim.Site.make site);
      let db = Ldbms.Database.create name in
      Ldbms.Database.load db ~name:tname schema rows;
      Narada.Directory.register directory
        (Narada.Service.make ~site ~caps:Caps.ingres_like db);
      (match M.incorporate_auto session ~service:name with
      | Ok () -> ()
      | Error m -> failwith m);
      match M.import_all session ~service:name with
      | Ok () -> ()
      | Error m -> failwith m)
    [
      ("market", "msite", "sales", sales_schema, sales);
      ("store", "ssite", "parts", parts_schema, parts);
      ("depot", "dsite", "stock", stock_schema, stock);
    ];
  (session, world)

let join3 =
  "USE market store depot SELECT s.sid, p.pname, st.wh FROM market.sales s, \
   store.parts p, depot.stock st WHERE s.part_id = p.pid AND s.part_id = \
   st.spid"

let contains = Astring_contains.contains

(* ---- pool release on Program_error ------------------------------------ *)

(* the program OPENs a connection and then dies on an unknown alias: the
   engine must still check the pooled connection back in, so the next
   run's OPEN is a pool hit, not a second dial *)
let test_pool_released_on_program_error () =
  let world, dir = engine_setup () in
  let pool = Narada.Pool.create world in
  let bad =
    {|
DOLBEGIN
OPEN aero AT site1 AS a;
TASK T1 FOR ghost { SELECT flnu FROM flights } ENDTASK;
DOLEND
|}
  in
  (match Engine.run_text ~pool ~directory:dir ~world bad with
  | Error m ->
      Alcotest.(check bool) "reports the unknown alias" true
        (contains m "ghost")
  | Ok _ -> Alcotest.fail "malformed program executed");
  Alcotest.(check int) "connection parked despite the error" 1
    (Narada.Pool.size pool);
  let good =
    {|
DOLBEGIN
OPEN aero AT site1 AS a;
TASK T1 FOR a { SELECT flnu FROM flights } ENDTASK;
CLOSE a;
DOLEND
|}
  in
  (match Engine.run_text ~pool ~directory:dir ~world good with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("second run: " ^ m));
  let st = Narada.Pool.stats pool in
  Alcotest.(check int) "second OPEN reuses the parked connection" 1
    st.Narada.Pool.hits

(* the Conflict abort class must go through the same epilogue as
   Program_error: the loser's pooled connection is checked back in (its
   conflicted transaction was already rolled back by the session), so the
   next OPEN is a pool hit, not a leak-forced dial *)
let test_pool_released_on_conflict_abort () =
  let world, dir = engine_setup () in
  let pool = Narada.Pool.create world in
  let parse text =
    match Narada.Dol_parser.parse text with
    | p -> p
    | exception Narada.Dol_parser.Error (m, _, _) -> Alcotest.fail m
  in
  let winner =
    parse
      {|
DOLBEGIN
OPEN aero AT site1 AS a;
TASK TA NOCOMMIT FOR a { UPDATE flights SET rate = rate * 1.1 } ENDTASK;
COMMIT TA;
DOLSTATUS=0;
CLOSE a;
DOLEND
|}
  in
  let loser =
    parse
      {|
DOLBEGIN
OPEN aero AT site1 AS b;
TASK TB NOCOMMIT FOR b { UPDATE flights SET rate = rate * 2.0 } ENDTASK;
COMMIT TB;
DOLSTATUS=0;
CLOSE b;
DOLEND
|}
  in
  let conflicts = ref 0 and conflict_aborts = ref 0 in
  let on_trace e =
    match e.Trace.kind with
    | Trace.Conflict _ -> incr conflicts
    | Trace.Conflict_abort { task; _ } ->
        Alcotest.(check string) "abort names the loser" "tb"
          (String.lowercase_ascii task);
        incr conflict_aborts
    | _ -> ()
  in
  let sa = Engine.start ~pool ~directory:dir ~world winner in
  let sb = Engine.start ~pool ~on_trace ~directory:dir ~world loser in
  (* A opens and prepares (reserving flights); B then opens and loses the
     first-committer-wins race, exhausting its transient-conflict retries *)
  ignore (Engine.step sa);
  ignore (Engine.step sa);
  ignore (Engine.step sb);
  ignore (Engine.step sb);
  let ob =
    match Engine.finish sb with Ok o -> o | Error m -> Alcotest.fail m
  in
  let oa =
    match Engine.finish sa with Ok o -> o | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "winner committed" true
    (Engine.status_of oa "TA" = D.C);
  Alcotest.(check bool) "loser aborted" true (Engine.status_of ob "TB" = D.A);
  Alcotest.(check bool) "conflicts observed" true (!conflicts > 0);
  Alcotest.(check int) "one terminal conflict abort" 1 !conflict_aborts;
  Alcotest.(check bool) "conflict was retried as transient" true
    (ob.Engine.retries > 0);
  (* both connections were parked by the epilogues — no leak on the
     conflict abort path *)
  Alcotest.(check int) "both connections parked" 2 (Narada.Pool.size pool);
  let st = Narada.Pool.stats pool in
  Alcotest.(check int) "exactly two dials" 2 st.Narada.Pool.misses;
  let again =
    {|
DOLBEGIN
OPEN aero AT site1 AS a;
TASK T1 FOR a { SELECT flnu FROM flights } ENDTASK;
CLOSE a;
DOLEND
|}
  in
  (match Engine.run_text ~pool ~directory:dir ~world again with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("follow-up run: " ^ m));
  Alcotest.(check bool) "follow-up OPEN reuses a parked connection" true
    ((Narada.Pool.stats pool).Narada.Pool.hits > 0)

(* ---- trace event ordering --------------------------------------------- *)

let twopc_program =
  {|
DOLBEGIN
OPEN aero AT site1 AS a;
OPEN bravo AT site2 AS b;
TASK T1 NOCOMMIT FOR a { UPDATE flights SET rate = rate * 1.1 } ENDTASK;
TASK T2 NOCOMMIT FOR b { UPDATE flights SET rate = rate * 1.1 } ENDTASK;
IF (T1=P) AND (T2=P) THEN
BEGIN
COMMIT T1, T2;
DOLSTATUS=0;
END;
CLOSE a b;
DOLEND
|}

(* the 2PC decision event must be emitted before any second-phase commit
   drives a prepared task to C — it is what recovery would replay *)
let test_decision_precedes_second_phase () =
  let world, dir = engine_setup () in
  let events = ref [] in
  let outcome =
    match
      Engine.run_text
        ~on_trace:(fun e -> events := e :: !events)
        ~directory:dir ~world twopc_program
    with
    | Ok o -> o
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check int) "committed" 0 outcome.Engine.dolstatus;
  let events = Array.of_list (List.rev !events) in
  let find_idx pred =
    let rec go k =
      if k >= Array.length events then None
      else if pred events.(k).Trace.kind then Some k
      else go (k + 1)
    in
    go 0
  in
  let decision_idx =
    match
      find_idx (function
        | Trace.Decision { verdict = Trace.Commit; tasks } ->
            List.length tasks = 2
        | _ -> false)
    with
    | Some k -> k
    | None -> Alcotest.fail "no commit decision event"
  in
  let commit_idx task =
    match
      find_idx (function
        | Trace.Status { task = t; status = D.C } ->
            String.lowercase_ascii t = task
        | _ -> false)
    with
    | Some k -> k
    | None -> Alcotest.failf "no C transition for %s" task
  in
  List.iter
    (fun task ->
      Alcotest.(check bool)
        (Printf.sprintf "decision precedes %s -> C" task)
        true
        (decision_idx < commit_idx task))
    [ "t1"; "t2" ];
  (* the rendered stream is the historical textual trace *)
  let rendered = Array.to_list (Array.map Trace.render events) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("rendered trace has " ^ needle) true
        (List.exists (fun line -> contains line needle) rendered))
    [ "OPEN aero"; "T1 -> P"; "2PC decision COMMIT"; "T1 -> C"; "CLOSE a" ]

(* ---- metrics registry ------------------------------------------------- *)

(* after a shipped global join, the registry's MOVE byte total and the
   per-site ledger must both reproduce the world's global counters *)
let test_metrics_match_world () =
  let session, world = make_fed3 () in
  (match M.exec session join3 with
  | Ok (M.Multitable _) -> ()
  | Ok r -> Alcotest.fail (M.result_to_string r)
  | Error m -> Alcotest.fail m);
  let ws = Netsim.World.stats world in
  let sites = Netsim.World.per_site world in
  Alcotest.(check bool) "some traffic" true (ws.Netsim.World.bytes_moved > 0);
  let sum field = List.fold_left (fun acc (_, st) -> acc + field st) 0 sites in
  Alcotest.(check int) "per-site sent bytes sum to the global total"
    ws.Netsim.World.bytes_moved
    (sum (fun st -> st.Netsim.World.sent_bytes));
  Alcotest.(check int) "per-site recv bytes sum to the global total"
    ws.Netsim.World.bytes_moved
    (sum (fun st -> st.Netsim.World.recv_bytes));
  Alcotest.(check int) "per-site messages sum to the global count"
    ws.Netsim.World.messages
    (sum (fun st -> st.Netsim.World.sent_msgs));
  let m = M.metrics session in
  Alcotest.(check int) "one engine run" 1 m.Metrics.engine_runs;
  Alcotest.(check int) "one global plan" 1 m.Metrics.plans_global;
  Alcotest.(check int) "two shipped subqueries" 2 m.Metrics.subqueries_shipped;
  Alcotest.(check bool) "MOVEs observed" true (m.Metrics.moves >= 2);
  Alcotest.(check bool) "moved bytes counted" true (m.Metrics.moved_bytes > 0);
  let json = M.metrics_json session in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json has " ^ needle) true (contains json needle))
    [
      "\"planning\"";
      "\"engine\"";
      "\"caches\"";
      "\"network\"";
      "\"sites\"";
      Printf.sprintf "\"bytes_moved\": %d" ws.Netsim.World.bytes_moved;
      "\"site\": \"msite\"";
      "\"site\": \"ssite\"";
      "\"site\": \"dsite\"";
    ]

(* the typed sink installed on the session sees the engine's events *)
let test_session_typed_trace () =
  let session, _world = make_fed3 () in
  let moves = ref 0 in
  M.set_typed_trace session
    (Some
       (fun e ->
         match e.Trace.kind with
         | Trace.Moved { bytes; _ } ->
             incr moves;
             Alcotest.(check bool) "moved bytes positive" true (bytes > 0)
         | _ -> ()));
  (match M.exec session join3 with
  | Ok (M.Multitable _) -> ()
  | Ok r -> Alcotest.fail (M.result_to_string r)
  | Error m -> Alcotest.fail m);
  Alcotest.(check int) "both shipped subqueries observed as MOVEs" 2 !moves

(* ---- EXPLAIN MULTIPLE ------------------------------------------------- *)

let test_explain_multiple_golden () =
  let session, world = make_fed3 () in
  Netsim.World.reset_stats world;
  let before_ms = Netsim.World.now_ms world in
  let text =
    match M.exec session ("EXPLAIN MULTIPLE " ^ join3) with
    | Ok (M.Info text) -> text
    | Ok r -> Alcotest.fail (M.result_to_string r)
    | Error m -> Alcotest.fail m
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("explain has " ^ needle) true
        (contains text needle))
    [
      "== phase 1-2: scope and expansion ==";
      "scope: market, store, depot";
      "global join over 3 table reference(s)";
      "market.sales";
      "store.parts";
      "depot.stock";
      "== phase 3: decomposition ==";
      "coordinator: market";
      "ship ";
      "semijoin APPLIED:";
      "key byte(s)";
      "== phase 4: DOL program ==";
      "DOLBEGIN";
      "MOVE";
      "DOLEND";
    ];
  (* phases only: nothing executed, no traffic, no virtual time *)
  let ws = Netsim.World.stats world in
  Alcotest.(check int) "no messages" 0 ws.Netsim.World.messages;
  Alcotest.(check (float 0.0)) "no virtual time" before_ms
    (Netsim.World.now_ms world);
  Alcotest.(check bool) "no engine outcome" true
    (M.last_engine_outcome session = None);
  let m = M.metrics session in
  Alcotest.(check int) "counted as explain" 1 m.Metrics.explains;
  Alcotest.(check int) "no engine run" 0 m.Metrics.engine_runs;
  (* the explained semijoin decision is recorded in the registry *)
  Alcotest.(check bool) "semijoin gate outcomes counted" true
    (m.Metrics.semijoins_applied + m.Metrics.semijoins_declined > 0);
  (* like execution, EXPLAIN MULTIPLE establishes the scope *)
  Alcotest.(check int) "scope persisted" 3
    (List.length (M.current_scope session))

(* plain EXPLAIN still renders just the DOL program *)
let test_explain_plain_unchanged () =
  let session, _world = make_fed3 () in
  match M.exec session ("EXPLAIN " ^ join3) with
  | Ok (M.Info text) ->
      Alcotest.(check bool) "program only" true (contains text "DOLBEGIN");
      Alcotest.(check bool) "no phase headers" false (contains text "phase 3")
  | Ok r -> Alcotest.fail (M.result_to_string r)
  | Error m -> Alcotest.fail m

let () =
  Alcotest.run "observability"
    [
      ( "engine epilogue",
        [
          Alcotest.test_case "pool released on Program_error" `Quick
            test_pool_released_on_program_error;
          Alcotest.test_case "pool released on conflict abort" `Quick
            test_pool_released_on_conflict_abort;
        ] );
      ( "trace",
        [
          Alcotest.test_case "2PC decision precedes second phase" `Quick
            test_decision_precedes_second_phase;
          Alcotest.test_case "session typed sink" `Quick
            test_session_typed_trace;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry matches world stats" `Quick
            test_metrics_match_world;
        ] );
      ( "explain multiple",
        [
          Alcotest.test_case "golden 3-database join" `Quick
            test_explain_multiple_golden;
          Alcotest.test_case "plain explain unchanged" `Quick
            test_explain_plain_unchanged;
        ] );
    ]
