(* The DOL optimizer (§5 future work): structure of the rewrites and,
   crucially, semantic equivalence — an optimized program must produce the
   same task statuses, return code and database states as the original. *)
open Sqlcore
module D = Narada.Dol_ast
module Opt = Narada.Dol_opt
module Engine = Narada.Engine
module F = Msql.Fixtures
module M = Msql.Msession

let parse = Narada.Dol_parser.parse

(* ---- structural tests -------------------------------------------------------- *)

let test_opens_parallelized () =
  let prog = parse {|
DOLBEGIN
  OPEN a AS aa;
  OPEN b AS bb;
  OPEN c AS cc;
  DOLSTATUS = 0;
DOLEND
|} in
  let opt, stats = Opt.optimize_with_stats prog in
  Alcotest.(check int) "three moved" 3 stats.Opt.opens_parallelized;
  match opt with
  | [ D.Parallel [ D.Open _; D.Open _; D.Open _ ]; D.Set_status 0 ] -> ()
  | _ -> Alcotest.fail "expected one parallel block of opens"

let test_single_open_untouched () =
  let prog = parse "DOLBEGIN OPEN a AS aa; DOLSTATUS = 0; DOLEND" in
  let opt, stats = Opt.optimize_with_stats prog in
  Alcotest.(check int) "none moved" 0 stats.Opt.opens_parallelized;
  Alcotest.(check bool) "unchanged" true (opt = prog)

let test_tasks_merged_when_unread () =
  let prog = parse {|
DOLBEGIN
  OPEN a AS aa;
  TASK T1 FOR aa { UPDATE t SET x = 1 } ENDTASK;
  TASK T2 FOR aa { UPDATE t SET y = 2 } ENDTASK;
  DOLSTATUS = 0;
DOLEND
|} in
  let opt, stats = Opt.optimize_with_stats prog in
  Alcotest.(check int) "one merged" 1 stats.Opt.tasks_merged;
  Alcotest.(check int) "one task left" 1 (List.length (D.task_names opt))

let test_tasks_not_merged_when_status_read () =
  let prog = parse {|
DOLBEGIN
  OPEN a AS aa;
  TASK T1 FOR aa { UPDATE t SET x = 1 } ENDTASK;
  TASK T2 FOR aa { UPDATE t SET y = 2 } ENDTASK;
  IF (T2=C) THEN BEGIN DOLSTATUS = 0; END;
DOLEND
|} in
  let _, stats = Opt.optimize_with_stats prog in
  Alcotest.(check int) "protected" 0 stats.Opt.tasks_merged

let test_nocommit_tasks_never_merged () =
  let prog = parse {|
DOLBEGIN
  OPEN a AS aa;
  TASK T1 NOCOMMIT FOR aa { UPDATE t SET x = 1 } ENDTASK;
  TASK T2 NOCOMMIT FOR aa { UPDATE t SET y = 2 } ENDTASK;
  DOLSTATUS = 0;
DOLEND
|} in
  let _, stats = Opt.optimize_with_stats prog in
  Alcotest.(check int) "prepared tasks untouched" 0 stats.Opt.tasks_merged

let test_closes_merged () =
  let prog = parse {|
DOLBEGIN
  OPEN a AS aa;
  CLOSE aa;
  CLOSE;
DOLEND
|} in
  (* CLOSE with no aliases parses as empty close; two closes merge *)
  let _, stats = Opt.optimize_with_stats prog in
  Alcotest.(check int) "merged" 1 stats.Opt.closes_merged

let test_merged_closes_deduped () =
  (* regression: merging CLOSE aa with CLOSE AA used to keep both aliases,
     releasing the same connection twice *)
  let prog = parse {|
DOLBEGIN
  OPEN a AS aa;
  CLOSE aa;
  CLOSE AA;
DOLEND
|} in
  let opt, stats = Opt.optimize_with_stats prog in
  Alcotest.(check int) "merged" 1 stats.Opt.closes_merged;
  match List.filter (function D.Close _ -> true | _ -> false) opt with
  | [ D.Close [ "aa" ] ] -> ()
  | [ D.Close aliases ] ->
      Alcotest.failf "expected one deduped alias, got [%s]"
        (String.concat "; " aliases)
  | _ -> Alcotest.fail "expected a single merged close"

let test_singleton_parallel_unwrapped () =
  let prog =
    [ D.Parallel
        [ D.Task { D.tname = "t"; mode = D.With_commit; target = "x"; commands = "SELECT 1 FROM t" } ];
      D.Set_status 0 ]
  in
  match Opt.optimize prog with
  | [ D.Task _; D.Set_status 0 ] -> ()
  | _ -> Alcotest.fail "singleton parallel should unwrap"

(* ---- dataflow scheduling -------------------------------------------------------- *)

let test_dataflow_waves_independent_tasks () =
  let prog = parse {|
DOLBEGIN
  OPEN a AS aa;
  OPEN b AS bb;
  TASK T1 FOR aa { UPDATE t SET x = 1 } ENDTASK;
  TASK T2 FOR bb { UPDATE t SET y = 2 } ENDTASK;
  DOLSTATUS = 0;
DOLEND
|} in
  let opt, ds = Opt.dataflow_with_stats prog in
  Alcotest.(check bool) "formed waves" true (ds.Narada.Dol_graph.waves >= 2);
  let wave_of pred =
    List.exists
      (function D.Parallel ms -> List.for_all pred ms && List.length ms = 2 | _ -> false)
      opt
  in
  Alcotest.(check bool) "opens overlapped" true
    (wave_of (function D.Open _ -> true | _ -> false));
  Alcotest.(check bool) "tasks overlapped" true
    (wave_of (function D.Task _ -> true | _ -> false))

let test_dataflow_respects_status_reads () =
  (* T2's wave must not absorb the IF that reads T1's status, and the IF must
     come after T1 completes: order is preserved, so this is structural *)
  let prog = parse {|
DOLBEGIN
  OPEN a AS aa;
  TASK T1 FOR aa { UPDATE t SET x = 1 } ENDTASK;
  IF (T1=C) THEN BEGIN DOLSTATUS = 0; END;
DOLEND
|} in
  let opt, ds = Opt.dataflow_with_stats prog in
  Alcotest.(check int) "no waves possible" 0 ds.Narada.Dol_graph.waves;
  Alcotest.(check bool) "program untouched" true (opt = prog)

let test_dataflow_same_alias_serialized () =
  (* two tasks on the same connection conflict: no wave may contain both *)
  let prog = parse {|
DOLBEGIN
  OPEN a AS aa;
  TASK T1 FOR aa { UPDATE t SET x = 1 } ENDTASK;
  TASK T2 FOR aa { UPDATE t SET y = 2 } ENDTASK;
  DOLSTATUS = 0;
DOLEND
|} in
  let opt, _ = Opt.dataflow_with_stats prog in
  List.iter
    (function
      | D.Parallel ms ->
          let tasks =
            List.length (List.filter (function D.Task _ -> true | _ -> false) ms)
          in
          Alcotest.(check bool) "tasks on one alias stay serial" true (tasks <= 1)
      | _ -> ())
    opt

let test_dataflow_idempotent () =
  let prog = parse {|
DOLBEGIN
  OPEN a AS aa;
  OPEN b AS bb;
  TASK T1 FOR aa { UPDATE t SET x = 1 } ENDTASK;
  TASK T2 FOR bb { UPDATE t SET y = 2 } ENDTASK;
  DOLSTATUS = 0;
DOLEND
|} in
  let once, _ = Opt.dataflow_with_stats prog in
  let twice, _ = Opt.dataflow_with_stats once in
  Alcotest.(check bool) "schedule is a fixpoint" true (once = twice)

(* ---- semantic equivalence ------------------------------------------------------ *)

let outcomes_equal (a : Engine.outcome) (b : Engine.outcome) =
  a.Engine.dolstatus = b.Engine.dolstatus
  && List.sort compare a.Engine.statuses = List.sort compare b.Engine.statuses

let db_state fx db table = Relation.rows (F.scan fx ~db ~table)

let run_with fx prog =
  match Engine.run ~directory:fx.F.directory ~world:fx.F.world prog with
  | Ok o -> o
  | Error m -> Alcotest.fail m

let equivalence_on sql =
  let fx1 = F.make () in
  let prog =
    match M.translate fx1.F.session sql with Ok p -> p | Error m -> Alcotest.fail m
  in
  let o1 = run_with fx1 prog in
  let fx2 = F.make () in
  let o2 = run_with fx2 (Narada.Dol_opt.optimize prog) in
  Alcotest.(check bool) "same outcome" true (outcomes_equal o1 o2);
  List.iter
    (fun (db, table) ->
      let r1 = db_state fx1 db table and r2 = db_state fx2 db table in
      Alcotest.(check bool)
        (Printf.sprintf "same state of %s.%s" db table)
        true
        (List.length r1 = List.length r2 && List.for_all2 Row.equal r1 r2))
    [ ("continental", "flights"); ("delta", "flight"); ("united", "flight");
      ("avis", "cars"); ("national", "vehicle") ]

let test_equivalence_vital_update () =
  equivalence_on
    {|USE continental VITAL delta united VITAL
      UPDATE flight% SET rate% = rate% * 1.1
      WHERE sour% = 'Houston' AND dest% = 'San Antonio'|}

let test_equivalence_select () =
  equivalence_on
    {|USE avis national
      LET car.status BE cars.carst vehicle.vstat
      SELECT %code FROM car WHERE status = 'available'|}

let test_equivalence_mtx () =
  equivalence_on
    {|USE avis national
      LET cartab.cstat BE cars.carst vehicle.vstat
      UPDATE cartab SET cstat = 'HOLD' WHERE cstat = 'available'|}

let test_equivalence_data_transfer () =
  (* transfer plans mix moves, inserts and cleanup tasks; the optimizer
     must preserve the inserted rows and the cleanup *)
  let sql =
    {|USE avis national
      INSERT INTO avis.cars (code, cartype, carst)
      SELECT v.vcode, v.vty, v.vstat FROM national.vehicle v|}
  in
  let run optimize =
    let fx = F.make () in
    M.set_optimize fx.F.session optimize;
    (match M.exec fx.F.session sql with
    | Ok (M.Update_report { outcome = M.Success; _ }) -> ()
    | Ok r -> Alcotest.fail (M.result_to_string r)
    | Error m -> Alcotest.fail m);
    F.scan fx ~db:"avis" ~table:"cars"
  in
  let plain = run false and optimized = run true in
  Alcotest.(check bool) "same fleet" true
    (Relation.equal_unordered plain optimized)

let test_optimized_is_faster () =
  (* the whole point: fewer sequential handshakes, lower virtual latency *)
  let sql =
    {|USE continental delta united avis national
      SELECT %nu FROM flight%|}
  in
  let fx1 = F.make () in
  (* compare against the paper-shaped serial program: the dataflow
     scheduler (on by default) would already overlap the opens *)
  M.set_dataflow fx1.F.session false;
  let prog =
    match M.translate fx1.F.session sql with Ok p -> p | Error m -> Alcotest.fail m
  in
  let o1 = run_with fx1 prog in
  let fx2 = F.make () in
  let o2 = run_with fx2 (Narada.Dol_opt.optimize prog) in
  Alcotest.(check bool) "optimized faster" true
    (o2.Engine.elapsed_ms < o1.Engine.elapsed_ms)

let test_session_flag () =
  let fx = F.make () in
  Alcotest.(check bool) "default off" false (M.optimize_enabled fx.F.session);
  M.set_optimize fx.F.session true;
  match
    M.exec fx.F.session
      {|USE continental delta UPDATE flight% SET rate% = rate% * 1.1|}
  with
  | Ok (M.Update_report { outcome = M.Success; _ }) -> ()
  | Ok r -> Alcotest.fail (M.result_to_string r)
  | Error m -> Alcotest.fail m

let () =
  Alcotest.run "dol-opt"
    [
      ( "structure",
        [
          Alcotest.test_case "parallel opens" `Quick test_opens_parallelized;
          Alcotest.test_case "single open" `Quick test_single_open_untouched;
          Alcotest.test_case "merge tasks" `Quick test_tasks_merged_when_unread;
          Alcotest.test_case "protect read statuses" `Quick test_tasks_not_merged_when_status_read;
          Alcotest.test_case "protect nocommit" `Quick test_nocommit_tasks_never_merged;
          Alcotest.test_case "merge closes" `Quick test_closes_merged;
          Alcotest.test_case "dedup merged closes" `Quick test_merged_closes_deduped;
          Alcotest.test_case "unwrap singleton" `Quick test_singleton_parallel_unwrapped;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "waves independent work" `Quick test_dataflow_waves_independent_tasks;
          Alcotest.test_case "respects status reads" `Quick test_dataflow_respects_status_reads;
          Alcotest.test_case "same alias serialized" `Quick test_dataflow_same_alias_serialized;
          Alcotest.test_case "idempotent" `Quick test_dataflow_idempotent;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "vital update" `Quick test_equivalence_vital_update;
          Alcotest.test_case "select" `Quick test_equivalence_select;
          Alcotest.test_case "update" `Quick test_equivalence_mtx;
          Alcotest.test_case "faster" `Quick test_optimized_is_faster;
          Alcotest.test_case "data transfer" `Quick test_equivalence_data_transfer;
          Alcotest.test_case "session flag" `Quick test_session_flag;
        ] );
    ]
